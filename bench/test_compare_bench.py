#!/usr/bin/env python3
"""Regression tests for compare_bench.py on synthetic base/head pairs.

The scenarios that have actually bitten this script:
  - a head file with no baseline counterpart (first run of a new
    trajectory, e.g. BENCH_hnsw.json) must be skipped with a note, not
    KeyError or fail the diff;
  - a series row present only in the head (new series) must be noted
    and get only the absolute floors;
  - a row missing a key field (schema drift across commits) must be
    skipped with a note, not crash the whole comparison;
  - genuine regressions and absolute-floor violations must still fail.

Run directly (exits non-zero on failure) or via ctest.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")

# A head snapshot that satisfies every absolute gate.
KERNELS = {
    "kernels": [
        {"metric": "l2", "dim": 128, "batched_us_per_query": 10.0},
        {"metric": "l1", "dim": 128, "batched_us_per_query": 12.0},
    ],
    "batch_tiled": [
        {"metric": "l2", "dim": 128, "tiled_qps": 90000.0, "speedup": 1.8},
    ],
    "isa_dispatch": {
        "active_tier": "avx2",
        "kernels": [
            {"kernel": "l2_squared", "dim": 128, "dispatched_mevals": 35.0,
             "autovec_mevals": 30.0, "speedup_vs_autovec": 1.17},
            {"kernel": "l2_squared", "dim": 512, "dispatched_mevals": 8.2,
             "autovec_mevals": 7.4, "speedup_vs_autovec": 1.11},
            {"kernel": "hellinger", "dim": 128, "dispatched_mevals": 14.0,
             "autovec_mevals": 3.5, "speedup_vs_autovec": 4.0},
            {"kernel": "hellinger", "dim": 512, "dispatched_mevals": 3.5,
             "autovec_mevals": 0.9, "speedup_vs_autovec": 3.9},
        ],
        "hellinger_fast": [
            {"dim": 128, "exact_mevals": 14.0, "fast_mevals": 16.5,
             "speedup": 1.18},
            {"dim": 512, "exact_mevals": 3.5, "fast_mevals": 4.2,
             "speedup": 1.2},
        ],
    },
}
SHARDS = {"shard_scaling": [{"shards": 1, "batch_qps": 2500.0}]}
QUANT = {"quantization": [
    {"backing": "none", "rerank_factor": 8, "batch_qps": 2200.0,
     "compression_x": 1.0},
    {"backing": "int8", "rerank_factor": 8, "batch_qps": 9000.0,
     "compression_x": 3.9}]}
SERVING = {"serving": [
    {"scenario": "healthy", "qps": 4000.0, "degraded_fraction": 0.0},
    {"scenario": "slow_shard", "qps": 3000.0, "degraded_fraction": 0.0},
    {"scenario": "flaky_shard", "qps": 3000.0, "degraded_fraction": 0.005},
    {"scenario": "failed_shard", "qps": 3500.0, "degraded_fraction": 1.0},
]}
HNSW = {
    "linear_scan": {"batch_qps": 2500.0},
    "hnsw": [
        {"ef": 16, "is_default": False, "recall_at_10": 0.97,
         "qps": 31000.0, "speedup_x": 12.4},
        {"ef": 64, "is_default": True, "recall_at_10": 1.0,
         "qps": 15000.0, "speedup_x": 6.0},
    ],
}
OBS = {"obs": [
    {"mode": "uninstrumented", "batch_qps": 8000.0, "overhead_pct": 0.0},
    {"mode": "metrics", "batch_qps": 7950.0, "overhead_pct": 0.625},
    {"mode": "trace_1", "batch_qps": 7500.0, "overhead_pct": 6.25},
]}


def write_dir(path, files):
    os.makedirs(path, exist_ok=True)
    for name, payload in files.items():
        with open(os.path.join(path, name), "w", encoding="utf-8") as f:
            json.dump(payload, f)


def run(base, head, threshold=None):
    cmd = [sys.executable, SCRIPT, base, head]
    if threshold is not None:
        cmd += ["--threshold", str(threshold)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


FAILURES = []


def expect(condition, label, detail=""):
    if condition:
        print(f"ok: {label}")
    else:
        FAILURES.append(label)
        print(f"FAIL: {label}\n{detail}")


def head_files():
    return {
        "BENCH_kernels.json": copy.deepcopy(KERNELS),
        "BENCH_shards.json": copy.deepcopy(SHARDS),
        "BENCH_quant.json": copy.deepcopy(QUANT),
        "BENCH_serving.json": copy.deepcopy(SERVING),
        "BENCH_hnsw.json": copy.deepcopy(HNSW),
        "BENCH_obs.json": copy.deepcopy(OBS),
    }


def base_files_without_hnsw():
    files = head_files()
    del files["BENCH_hnsw.json"]
    return files


def main():
    with tempfile.TemporaryDirectory() as tmp:
        # 1. Head introduces BENCH_hnsw.json; base predates it. The diff
        # must pass, noting the skip, and still run the hnsw floors.
        base = os.path.join(tmp, "base1")
        head = os.path.join(tmp, "head1")
        write_dir(base, base_files_without_hnsw())
        write_dir(head, head_files())
        code, out = run(base, head)
        expect(code == 0, "new file in head passes", out)
        expect("BENCH_hnsw.json: no baseline, skipped" in out,
               "new file is noted as skipped", out)
        expect("hnsw default ef=64 recall@10" in out,
               "absolute hnsw floors still run without a baseline", out)

        # 2. New series rows in the head (kernels row for a new metric)
        # must be noted, never failed or crashed on.
        head2 = os.path.join(tmp, "head2")
        files = head_files()
        files["BENCH_kernels.json"]["kernels"].append(
            {"metric": "cosine", "dim": 256, "batched_us_per_query": 9.0})
        write_dir(head2, files)
        code, out = run(base, head2)
        expect(code == 0, "new series row in head passes", out)
        expect("new series" in out, "new series row is noted", out)

        # 3. A baseline row missing a key field (older schema) is
        # skipped with a note instead of a KeyError traceback.
        base3 = os.path.join(tmp, "base3")
        files = base_files_without_hnsw()
        files["BENCH_kernels.json"]["kernels"].append({"metric": "l1"})
        write_dir(base3, files)
        code, out = run(base3, head)
        expect(code == 0, "baseline row missing key field passes", out)
        expect("missing key field" in out,
               "missing key field is noted", out)
        expect("Traceback" not in out, "no traceback on schema drift", out)

        # 4. A genuine QPS regression in an established series fails.
        head4 = os.path.join(tmp, "head4")
        files = head_files()
        files["BENCH_shards.json"]["shard_scaling"][0]["batch_qps"] = 1000.0
        write_dir(head4, files)
        code, out = run(base, head4)
        expect(code == 1, "regressed series fails", out)
        expect("batch_qps dropped" in out, "regression names the field", out)

        # 5. hnsw absolute floors: default-ef recall below 0.95 fails
        # even with no baseline to compare against.
        head5 = os.path.join(tmp, "head5")
        files = head_files()
        files["BENCH_hnsw.json"]["hnsw"][1]["recall_at_10"] = 0.90
        write_dir(head5, files)
        code, out = run(base, head5)
        expect(code == 1, "low default-ef recall fails", out)
        expect("below the 0.95 floor" in out, "recall floor names itself",
               out)

        # 6. hnsw speed floor: curve with no >= 10x point at recall >=
        # 0.95 fails.
        head6 = os.path.join(tmp, "head6")
        files = head_files()
        files["BENCH_hnsw.json"]["hnsw"][0]["speedup_x"] = 4.0
        write_dir(head6, files)
        code, out = run(base, head6)
        expect(code == 1, "missing 10x point fails", out)
        expect("no row reaches recall@10" in out,
               "speed floor names itself", out)

        # 7. hnsw series regressions diff like any other once a
        # baseline exists (qps drop beyond threshold fails).
        base7 = os.path.join(tmp, "base7")
        head7 = os.path.join(tmp, "head7")
        write_dir(base7, head_files())
        files = head_files()
        files["BENCH_hnsw.json"]["hnsw"][0]["qps"] = 10000.0
        files["BENCH_hnsw.json"]["hnsw"][0]["speedup_x"] = 12.0
        write_dir(head7, files)
        code, out = run(base7, head7)
        expect(code == 1, "hnsw qps regression fails against baseline", out)

        # 8. obs absolute ceiling: metrics-mode instrumentation overhead
        # above 2% fails even with no baseline to compare against.
        head8 = os.path.join(tmp, "head8")
        files = head_files()
        files["BENCH_obs.json"]["obs"][1]["overhead_pct"] = 3.5
        write_dir(head8, files)
        code, out = run(base, head8)
        expect(code == 1, "obs overhead above ceiling fails", out)
        expect("above the 2.0% ceiling" in out,
               "obs ceiling names itself", out)

        # 9. obs gate must not be silently disabled by a vanished row.
        head9 = os.path.join(tmp, "head9")
        files = head_files()
        files["BENCH_obs.json"]["obs"] = [files["BENCH_obs.json"]["obs"][0]]
        write_dir(head9, files)
        code, out = run(base, head9)
        expect(code == 1, "missing obs metrics row fails", out)
        expect("'metrics' mode row missing" in out,
               "missing obs row names itself", out)

        # 10. isa_dispatch absolute floors: dispatched l2 falling below
        # 0.9x autovec fails even with no baseline to compare against.
        head10 = os.path.join(tmp, "head10")
        files = head_files()
        isa = files["BENCH_kernels.json"]["isa_dispatch"]
        isa["kernels"][0]["speedup_vs_autovec"] = 0.8
        write_dir(head10, files)
        code, out = run(base, head10)
        expect(code == 1, "dispatched l2 below 0.9x autovec fails", out)
        expect("below the 0.9x floor" in out,
               "dispatch floor names itself", out)

        # 11. On the scalar tier the dispatched table IS the scalar
        # reference: the vector floors must be skipped, not failed.
        head11 = os.path.join(tmp, "head11")
        files = head_files()
        isa = files["BENCH_kernels.json"]["isa_dispatch"]
        isa["active_tier"] = "scalar"
        for row in isa["kernels"]:
            row["speedup_vs_autovec"] = 1.0
        write_dir(head11, files)
        code, out = run(base, head11)
        expect(code == 0, "scalar tier skips the vector dispatch floors",
               out)
        expect("vector floors skipped" in out,
               "scalar-tier skip is noted", out)

        # 12. A bench binary predating the dispatch series must fail the
        # gate loudly, not silently skip it.
        head12 = os.path.join(tmp, "head12")
        files = head_files()
        del files["BENCH_kernels.json"]["isa_dispatch"]
        write_dir(head12, files)
        code, out = run(base, head12)
        expect(code == 1, "missing isa_dispatch section fails", out)
        expect("isa_dispatch section missing" in out,
               "missing dispatch section names itself", out)

        # 13. int8 absolute floor: the dequant-free scan dropping below
        # the float-scan QPS fails even with no baseline.
        head13 = os.path.join(tmp, "head13")
        files = head_files()
        files["BENCH_quant.json"]["quantization"][1]["batch_qps"] = 1500.0
        write_dir(head13, files)
        code, out = run(base, head13)
        expect(code == 1, "int8 below float-scan QPS fails", out)
        expect("below the 1.0x floor" in out,
               "int8 floor names itself", out)

        # 14. The int8 floor cannot be disabled by dropping the float
        # comparison row.
        head14 = os.path.join(tmp, "head14")
        files = head_files()
        files["BENCH_quant.json"]["quantization"] = [
            files["BENCH_quant.json"]["quantization"][1]]
        write_dir(head14, files)
        code, out = run(base, head14)
        expect(code == 1, "missing 'none' backing row fails", out)
        expect("int8 scan floor cannot run" in out,
               "missing backing row names itself", out)

    if FAILURES:
        print(f"\n{len(FAILURES)} compare_bench regression test(s) failed")
        return 1
    print("\ncompare_bench regression tests OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
