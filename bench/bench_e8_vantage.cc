// E8 — Figure "vantage point selection ablation".
//
// How much does vantage selection matter? Random selection is cheapest
// to build; max-spread buys more discriminating annuli with extra build
// distance evaluations; the corner heuristic sits in between.

#include "bench/bench_common.h"
#include "index/kd_tree.h"
#include "index/vp_tree.h"

namespace cbix::bench {
namespace {

void Run() {
  PrintExperimentHeader(
      "E8", "vantage selection policy ablation (d=16, 10-NN)",
      "clustered Gaussian vectors, 50 queries; policies: random, "
      "max_spread, corner");

  TablePrinter table({"N", "policy", "build_evals", "query_evals",
                      "frac_of_N", "depth"});
  table.PrintHeader();

  for (size_t n : {5000, 20000, 60000}) {
    const auto spec = StandardWorkload(n, 16);
    const auto data = GenerateVectors(spec);
    const auto queries =
        GenerateQueries(spec, data, QueryMode::kPerturbedData, 50, 0.02);

    for (VantageSelection policy :
         {VantageSelection::kRandom, VantageSelection::kMaxSpread,
          VantageSelection::kCorner}) {
      VpTreeOptions options;
      options.arity = 4;
      options.selection = policy;
      VpTree tree(MakeMinkowskiMetric(MinkowskiKind::kL2), options);
      CBIX_CHECK(tree.Build(data).ok());
      const QueryCost cost = MeasureKnn(tree, queries, 10);
      table.PrintRow({FmtInt(n), VantageSelectionName(policy),
                      FmtInt(tree.build_distance_evals()),
                      Fmt(cost.mean_distance_evals, 0),
                      Fmt(cost.evals_fraction, 3),
                      FmtInt(tree.Shape().max_depth)});
    }
  }
  std::printf(
      "\nExpected shape: max_spread/corner spend more build evals than\n"
      "random and repay it with equal-or-lower query evals; the gap is\n"
      "modest on well-clustered data.\n");
}

}  // namespace
}  // namespace cbix::bench

int main() {
  cbix::bench::Run();
  return 0;
}
