// Negative-path corpus for CbirEngine::Load: a corrupted database
// file must come back as a non-OK Status — never a crash, a hang, or
// a multi-gigabyte allocation — across the shards x quantization grid.
//
// Three corruption families, applied to genuinely saved files:
//   * truncation at every interesting boundary (empty file, mid-
//     header, header-only, mid-payload);
//   * bit flips sprayed across the frame (header fields, payload
//     bytes; the CRC or the section parsers must catch them);
//   * a lying length prefix — the header's payload_size claims far
//     more than the file holds, which must be caught by the size
//     check before any allocation happens (a resize-bomb otherwise).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "corpus/vector_workload.h"

namespace cbix {
namespace {

std::vector<Vec> ClusteredData(size_t n, size_t dim, uint64_t seed = 33) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = n;
  spec.dim = dim;
  spec.seed = seed;
  return GenerateVectors(spec);
}

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "cbix_load_fuzz_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

struct FuzzCase {
  std::string name;
  IndexKind index_kind;
  size_t shards;
  QuantizationKind quantization;
};

class LoadFuzz : public ::testing::TestWithParam<FuzzCase> {
 protected:
  // Saves a real engine file for this config and returns its bytes.
  std::vector<uint8_t> SavedBytes(const std::string& tag) {
    const size_t kDim = 24;
    const auto data = ClusteredData(120, kDim);
    EngineConfig config;
    config.index_kind = GetParam().index_kind;
    config.metric = MetricKind::kL2;
    config.shards = GetParam().shards;
    config.quantization = GetParam().quantization;
    config.pq_m = 6;
    config.rerank_factor = 8;
    config.hnsw_m = 8;
    config.hnsw_ef_construction = 40;
    config_ = config;
    CbirEngine engine((FeatureExtractor()), config);
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_TRUE(
          engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
    }
    EXPECT_TRUE(engine.BuildIndex().ok());
    const std::string path = TempPath(GetParam().name + "_" + tag);
    EXPECT_TRUE(engine.Save(path).ok());
    auto bytes = ReadAll(path);
    std::remove(path.c_str());
    EXPECT_GT(bytes.size(), 20u);
    return bytes;
  }

  // Loading `bytes` must fail with a Status, not a crash.
  void ExpectLoadFails(const std::vector<uint8_t>& bytes,
                       const std::string& tag) {
    const std::string path = TempPath(GetParam().name + "_" + tag);
    WriteAll(path, bytes);
    CbirEngine engine((FeatureExtractor()), config_);
    const Status status = engine.Load(path);
    std::remove(path.c_str());
    EXPECT_FALSE(status.ok()) << GetParam().name << " " << tag;
  }

  EngineConfig config_;
};

TEST_P(LoadFuzz, TruncationsAreRejected) {
  const auto bytes = SavedBytes("trunc");
  // Every boundary that has bitten a loader somewhere: nothing, a
  // partial header, exactly the header (zero of the payload), one
  // byte of payload, half the payload, all but the last byte.
  const size_t cuts[] = {0,
                        7,
                        19,
                        20,
                        21,
                        bytes.size() / 2,
                        bytes.size() - 1};
  for (const size_t cut : cuts) {
    if (cut >= bytes.size()) continue;
    std::vector<uint8_t> mutated(bytes.begin(), bytes.begin() + cut);
    ExpectLoadFails(mutated, "cut" + std::to_string(cut));
  }
}

TEST_P(LoadFuzz, BitFlipsAreRejected) {
  const auto bytes = SavedBytes("flip");
  // Flip one bit in each header field and a spray through the
  // payload. CRC (payload) or field validation (header) must object.
  // Deterministic offsets so a failure replays.
  std::vector<size_t> offsets = {0, 5, 9, 13, 17};  // header fields
  for (size_t frac = 1; frac <= 16; ++frac) {
    offsets.push_back(20 + (bytes.size() - 21) * frac / 16);
  }
  for (const size_t off : offsets) {
    if (off >= bytes.size()) continue;
    std::vector<uint8_t> mutated = bytes;
    mutated[off] ^= 0x40;
    const std::string tag = "off" + std::to_string(off);
    const std::string path = TempPath(GetParam().name + "_" + tag);
    WriteAll(path, mutated);
    CbirEngine engine((FeatureExtractor()), config_);
    const Status status = engine.Load(path);
    std::remove(path.c_str());
    // A header or payload flip must be rejected; a rejected load must
    // leave the engine usable (empty, accepting inserts).
    EXPECT_FALSE(status.ok()) << GetParam().name << " " << tag;
    EXPECT_EQ(engine.size(), 0u);
    EXPECT_TRUE(engine.AddFeatureVector(Vec{1.0f, 2.0f}, "alive").ok());
  }
}

TEST_P(LoadFuzz, LyingLengthPrefixIsRejectedWithoutAllocating) {
  const auto bytes = SavedBytes("lie");
  // The u64 payload_size lives at header offset 8. Claim ~256 GiB:
  // the loader must compare against the real file size and bail out
  // before resizing the payload buffer (OOM otherwise).
  std::vector<uint8_t> mutated = bytes;
  const uint64_t huge = 1ull << 38;
  std::memcpy(mutated.data() + 8, &huge, sizeof(huge));
  ExpectLoadFails(mutated, "huge_len");

  // Claiming slightly more than available must fail too (truncated
  // payload read), as must claiming less (CRC over fewer bytes).
  uint64_t real_size = 0;
  std::memcpy(&real_size, bytes.data() + 8, sizeof(real_size));
  mutated = bytes;
  const uint64_t plus_one = real_size + 1;
  std::memcpy(mutated.data() + 8, &plus_one, sizeof(plus_one));
  ExpectLoadFails(mutated, "len_plus_one");

  if (real_size > 0) {
    mutated = bytes;
    const uint64_t minus_one = real_size - 1;
    std::memcpy(mutated.data() + 8, &minus_one, sizeof(minus_one));
    ExpectLoadFails(mutated, "len_minus_one");
  }
}

TEST_P(LoadFuzz, GarbageAndWrongMagicAreRejected) {
  // Pure garbage of assorted sizes.
  for (const size_t n : {1u, 19u, 20u, 64u, 4096u}) {
    std::vector<uint8_t> garbage(n);
    for (size_t i = 0; i < n; ++i) {
      garbage[i] = static_cast<uint8_t>(i * 131 + 17);
    }
    ExpectLoadFails(garbage, "garbage" + std::to_string(n));
  }
  // A real frame with the magic clobbered.
  auto bytes = SavedBytes("magic");
  bytes[0] ^= 0xff;
  ExpectLoadFails(bytes, "bad_magic");
  // A real frame with the version clobbered.
  bytes = SavedBytes("version");
  bytes[4] ^= 0xff;
  ExpectLoadFails(bytes, "bad_version");
}

INSTANTIATE_TEST_SUITE_P(
    KindByShardsByQuantization, LoadFuzz,
    ::testing::Values(
        FuzzCase{"flat_none", IndexKind::kLinearScan, 1,
                 QuantizationKind::kNone},
        FuzzCase{"flat_int8", IndexKind::kLinearScan, 1,
                 QuantizationKind::kInt8},
        FuzzCase{"flat_pq", IndexKind::kLinearScan, 1, QuantizationKind::kPq},
        FuzzCase{"sharded_none", IndexKind::kLinearScan, 3,
                 QuantizationKind::kNone},
        FuzzCase{"sharded_int8", IndexKind::kLinearScan, 3,
                 QuantizationKind::kInt8},
        FuzzCase{"sharded_pq", IndexKind::kLinearScan, 3,
                 QuantizationKind::kPq},
        // HNSW: the file now carries a serialized graph section, so the
        // truncation/flip/lying-length families chew on it too.
        FuzzCase{"hnsw_flat_none", IndexKind::kHnsw, 1,
                 QuantizationKind::kNone},
        FuzzCase{"hnsw_flat_int8", IndexKind::kHnsw, 1,
                 QuantizationKind::kInt8},
        FuzzCase{"hnsw_sharded_none", IndexKind::kHnsw, 3,
                 QuantizationKind::kNone}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace cbix
