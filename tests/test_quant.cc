// Quantized feature storage: correctness of the int8 and PQ backings
// and of the two-stage (quantized scan -> exact rerank) query path.
//
//  - quantize -> dequantize reconstruction error is bounded by half a
//    grid cell per dimension (int8) / the codebook assignment (PQ);
//  - the asymmetric kernels agree with scalar references computed on
//    explicitly dequantized rows;
//  - PQ ADC table lookups agree with brute-force codebook distances;
//  - quantized stores round-trip through BinaryWriter/Reader;
//  - range search is *exact* (equals LinearScanIndex) for every engine
//    metric, quantized backing notwithstanding;
//  - sharded and flat quantized engines return identical ids after the
//    exact rerank — the per-shard-rollout invariant the ROADMAP calls
//    for.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "corpus/vector_workload.h"
#include "distance/batch_kernels.h"
#include "distance/minkowski.h"
#include "index/linear_scan.h"
#include "quant/int8_matrix.h"
#include "quant/pq.h"
#include "quant/quantized_store.h"
#include "util/random.h"
#include "util/serialize.h"

namespace cbix {
namespace {

FeatureMatrix ClusteredMatrix(size_t count, size_t dim, uint64_t seed = 7) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = count;
  spec.dim = dim;
  spec.seed = seed;
  return FeatureMatrix::FromVectors(GenerateVectors(spec));
}

std::vector<Vec> PerturbedQueries(const FeatureMatrix& data, size_t count,
                                  uint64_t seed = 4321) {
  std::vector<Vec> queries;
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    Vec q = data.RowVec(rng.NextBelow(data.count()));
    for (float& v : q) v += static_cast<float>(rng.Gaussian(0.0, 0.02));
    queries.push_back(std::move(q));
  }
  return queries;
}

// ---------------------------------------------------------------------------
// Int8Matrix: reconstruction bounds and kernel equivalence.

TEST(Int8Matrix, ReconstructionWithinHalfGridCell) {
  const FeatureMatrix data = ClusteredMatrix(200, 19);
  const Int8Matrix q = Int8Matrix::Quantize(data);
  ASSERT_EQ(q.count(), data.count());
  ASSERT_EQ(q.dim(), data.dim());
  std::vector<float> recon(data.dim());
  for (size_t i = 0; i < data.count(); ++i) {
    q.DequantizeRow(i, recon.data());
    for (size_t j = 0; j < data.dim(); ++j) {
      const float bound = q.scales()[j] * 0.5f + 1e-6f;
      EXPECT_NEAR(recon[j], data.row(i)[j], bound)
          << "row " << i << " dim " << j;
    }
  }
}

TEST(Int8Matrix, ConstantDimensionReconstructsExactly) {
  FeatureMatrix data(3);
  const float rows[][3] = {{1.5f, 0.25f, -2.0f},
                           {1.5f, 0.75f, -1.0f},
                           {1.5f, 0.50f, 0.5f}};
  for (const auto& r : rows) data.AppendRow(r, 3);
  const Int8Matrix q = Int8Matrix::Quantize(data);
  EXPECT_EQ(q.scales()[0], 0.0f);  // zero-range dimension
  std::vector<float> recon(3);
  for (size_t i = 0; i < 3; ++i) {
    q.DequantizeRow(i, recon.data());
    EXPECT_EQ(recon[0], 1.5f);
  }
}

TEST(Int8Matrix, AsymmetricL2MatchesScalarReference) {
  const FeatureMatrix data = ClusteredMatrix(150, 27);
  const Int8Matrix q = Int8Matrix::Quantize(data);
  const std::vector<Vec> queries = PerturbedQueries(data, 8);
  std::vector<float> recon(data.dim());
  std::vector<float> centered(data.dim());
  for (const Vec& query : queries) {
    q.CenterQuery(query.data(), centered.data());
    for (size_t i = 0; i < data.count(); ++i) {
      q.DequantizeRow(i, recon.data());
      double ref = 0.0;
      for (size_t j = 0; j < data.dim(); ++j) {
        const double d = static_cast<double>(query[j]) - recon[j];
        ref += d * d;
      }
      // Float-lane kernel: agreement within its documented accuracy.
      const double got = q.AsymmetricL2Squared(centered.data(), i);
      EXPECT_NEAR(got, ref, Int8Matrix::kKeyRelativeError * (1.0 + ref))
          << "row " << i;
    }
  }
}

TEST(Int8Matrix, AsymmetricDotMatchesScalarReference) {
  const FeatureMatrix data = ClusteredMatrix(100, 33);
  const Int8Matrix q = Int8Matrix::Quantize(data);
  const std::vector<Vec> queries = PerturbedQueries(data, 4);
  std::vector<float> recon(data.dim());
  for (const Vec& query : queries) {
    double q_dot_offset = 0.0;
    for (size_t j = 0; j < data.dim(); ++j) {
      q_dot_offset += static_cast<double>(query[j]) * q.offsets()[j];
    }
    for (size_t i = 0; i < data.count(); ++i) {
      q.DequantizeRow(i, recon.data());
      double ref = 0.0;
      for (size_t j = 0; j < data.dim(); ++j) {
        ref += static_cast<double>(query[j]) * recon[j];
      }
      const double got = q.AsymmetricDot(query.data(), q_dot_offset, i);
      EXPECT_NEAR(got, ref, 1e-6 * (1.0 + std::fabs(ref))) << "row " << i;
    }
  }
}

TEST(Int8Matrix, IntegerL2ScanWithinDocumentedAbsoluteBound) {
  const FeatureMatrix data = ClusteredMatrix(150, 27);
  const Int8Matrix q = Int8Matrix::Quantize(data);
  const std::vector<Vec> queries = PerturbedQueries(data, 8);
  std::vector<float> centered(data.dim());
  std::vector<int16_t> w_q(q.stride());
  std::vector<double> got(data.count());
  for (const Vec& query : queries) {
    q.CenterQuery(query.data(), centered.data());
    double qc_norm_sq = 0.0;
    for (size_t j = 0; j < data.dim(); ++j) {
      qc_norm_sq += static_cast<double>(centered[j]) * centered[j];
    }
    double w_step = -1.0;
    q.PrepareL2ScanQuery(centered.data(), w_q.data(), &w_step);
    ASSERT_GE(w_step, 0.0);
    for (size_t j = data.dim(); j < q.stride(); ++j) {
      ASSERT_EQ(w_q[j], 0) << "padding weight not zeroed";
    }
    q.AsymmetricL2SquaredIntBatch(w_q.data(), w_step, qc_norm_sq, 0,
                                  data.count(), got.data());
    for (size_t i = 0; i < data.count(); ++i) {
      // Exact-weight double reference of the same algebra the integer
      // scan approximates: |q_c|^2 + sum (s c)^2 - sum 2 q_c s c,
      // built straight from the codes (exact in double).
      const uint8_t* codes = q.row(i);
      double t = 0.0, cross = 0.0;
      for (size_t j = 0; j < data.dim(); ++j) {
        const double sc = static_cast<double>(q.scales()[j]) * codes[j];
        t += sc * sc;
        cross += 2.0 * static_cast<double>(centered[j]) * sc;
      }
      const double ref = qc_norm_sq + t - cross;
      // Weight-rounding bound plus the float storage of the row term.
      const double bound = q.ScanKeyAbsoluteError(w_step) + t * 1e-6 + 1e-9;
      EXPECT_LE(std::fabs(got[i] - ref), bound) << "row " << i;
    }
  }
}

TEST(Int8Matrix, IntegerDotScanWithinDocumentedAbsoluteBound) {
  const FeatureMatrix data = ClusteredMatrix(100, 33);
  const Int8Matrix q = Int8Matrix::Quantize(data);
  const std::vector<Vec> queries = PerturbedQueries(data, 4);
  std::vector<int16_t> w_q(q.stride());
  std::vector<double> got(data.count());
  for (const Vec& query : queries) {
    double q_dot_offset = 0.0;
    for (size_t j = 0; j < data.dim(); ++j) {
      q_dot_offset += static_cast<double>(query[j]) * q.offsets()[j];
    }
    double w_step = -1.0;
    q.PrepareDotScanQuery(query.data(), w_q.data(), &w_step);
    q.AsymmetricDotIntBatch(w_q.data(), w_step, q_dot_offset, 0,
                            data.count(), got.data());
    for (size_t i = 0; i < data.count(); ++i) {
      // Exact-weight reference from the codes: q_dot_offset +
      // sum q s c, so the only deviation left is weight rounding.
      const uint8_t* codes = q.row(i);
      double ref = q_dot_offset;
      for (size_t j = 0; j < data.dim(); ++j) {
        ref += static_cast<double>(query[j]) * q.scales()[j] * codes[j];
      }
      EXPECT_LE(std::fabs(got[i] - ref),
                q.ScanKeyAbsoluteError(w_step) + 1e-9)
          << "row " << i;
    }
  }
}

TEST(Int8Matrix, IntegerScanSurvivesSerializeRoundTrip) {
  // row_t_/max_code_mass_ are derived and not serialized; Deserialize
  // must recompute them so the integer scan gives identical keys.
  const FeatureMatrix data = ClusteredMatrix(80, 21);
  const Int8Matrix q = Int8Matrix::Quantize(data);
  BinaryWriter writer;
  q.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  Int8Matrix restored;
  ASSERT_TRUE(restored.Deserialize(&reader).ok());

  const Vec query = PerturbedQueries(data, 1)[0];
  std::vector<float> centered(data.dim());
  q.CenterQuery(query.data(), centered.data());
  double qc_norm_sq = 0.0;
  for (size_t j = 0; j < data.dim(); ++j) {
    qc_norm_sq += static_cast<double>(centered[j]) * centered[j];
  }
  std::vector<int16_t> w_q(q.stride());
  double w_step = 0.0;
  q.PrepareL2ScanQuery(centered.data(), w_q.data(), &w_step);
  std::vector<double> want(data.count()), got(data.count());
  q.AsymmetricL2SquaredIntBatch(w_q.data(), w_step, qc_norm_sq, 0,
                                data.count(), want.data());
  restored.AsymmetricL2SquaredIntBatch(w_q.data(), w_step, qc_norm_sq, 0,
                                       data.count(), got.data());
  EXPECT_EQ(got, want);
  EXPECT_EQ(restored.ScanKeyAbsoluteError(w_step),
            q.ScanKeyAbsoluteError(w_step));
}

TEST(Int8Matrix, DequantizeBlockMatchesRowwise) {
  const FeatureMatrix data = ClusteredMatrix(70, 13);
  const Int8Matrix q = Int8Matrix::Quantize(data);
  const size_t stride = 16;
  std::vector<float> block(32 * stride, -1.0f);
  q.DequantizeBlock(20, 32, block.data(), stride);
  std::vector<float> row(data.dim());
  for (size_t i = 0; i < 32; ++i) {
    q.DequantizeRow(20 + i, row.data());
    for (size_t j = 0; j < data.dim(); ++j) {
      EXPECT_EQ(block[i * stride + j], row[j]);
    }
    for (size_t j = data.dim(); j < stride; ++j) {
      EXPECT_EQ(block[i * stride + j], 0.0f);  // padding zero-filled
    }
  }
}

TEST(Int8Matrix, SerializeRoundTrip) {
  const FeatureMatrix data = ClusteredMatrix(60, 21);
  const Int8Matrix q = Int8Matrix::Quantize(data);
  BinaryWriter writer;
  q.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  Int8Matrix restored;
  ASSERT_TRUE(restored.Deserialize(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_TRUE(restored == q);
}

TEST(Int8Matrix, CompressionIsAtLeastFourXOnScanBytes) {
  const FeatureMatrix data = ClusteredMatrix(1024, 64);
  const Int8Matrix q = Int8Matrix::Quantize(data);
  // Codes are 1/4 of the float row bytes; scale/offset arrays amortize.
  EXPECT_LE(q.MemoryBytes() * 100, data.MemoryBytes() * 27);
}

// ---------------------------------------------------------------------------
// PQ: encode/decode, ADC equivalence, round-trip.

TEST(Pq, EncodePicksNearestCentroidAndAdcMatchesBruteForce) {
  const FeatureMatrix data = ClusteredMatrix(500, 24);
  PqOptions options;
  options.m = 6;
  options.train_iters = 5;
  const PqMatrix pq = PqMatrix::Quantize(data, options);
  const PqCodebook& cb = pq.codebook();
  ASSERT_EQ(cb.m(), 6u);
  ASSERT_EQ(cb.k(), 256u);

  const std::vector<Vec> queries = PerturbedQueries(data, 4);
  std::vector<double> lut(cb.m() * cb.k());
  std::vector<float> recon(data.dim());
  for (const Vec& query : queries) {
    cb.BuildAdcTable(query.data(), lut.data());
    for (size_t i = 0; i < data.count(); i += 17) {
      // Brute force: squared L2 between the query and the decoded row.
      pq.DequantizeRow(i, recon.data());
      const double ref =
          kernels::L2Squared(query.data(), recon.data(), data.dim());
      const double adc = cb.AdcDistanceSquared(lut.data(), pq.row(i));
      EXPECT_NEAR(adc, ref, 1e-6 * (1.0 + ref)) << "row " << i;
    }
  }

  // Every stored code is the argmin centroid of its subvector.
  for (size_t i = 0; i < data.count(); i += 71) {
    for (size_t s = 0; s < cb.m(); ++s) {
      const float* sub = data.row(i) + cb.sub_begin(s);
      double best = std::numeric_limits<double>::infinity();
      size_t best_c = 0;
      for (size_t c = 0; c < cb.k(); ++c) {
        const double d =
            kernels::L2Squared(sub, cb.centroid(s, c), cb.sub_dim(s));
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      EXPECT_EQ(pq.row(i)[s], best_c) << "row " << i << " sub " << s;
    }
  }
}

TEST(Pq, SubspaceLayoutCoversAllDimensionsForUnevenSplit) {
  const FeatureMatrix data = ClusteredMatrix(300, 23);  // 23 dims, m=5
  PqOptions options;
  options.m = 5;
  options.train_iters = 3;
  const PqCodebook cb = PqCodebook::Train(data, options);
  ASSERT_EQ(cb.sub_begin(0), 0u);
  ASSERT_EQ(cb.sub_begin(cb.m()), 23u);
  size_t total = 0;
  for (size_t s = 0; s < cb.m(); ++s) {
    EXPECT_GE(cb.sub_dim(s), 4u);
    EXPECT_LE(cb.sub_dim(s), 5u);
    total += cb.sub_dim(s);
  }
  EXPECT_EQ(total, 23u);
}

TEST(Pq, TrainingIsDeterministic) {
  const FeatureMatrix data = ClusteredMatrix(400, 16);
  PqOptions options;
  options.m = 4;
  options.train_iters = 4;
  const PqMatrix a = PqMatrix::Quantize(data, options);
  const PqMatrix b = PqMatrix::Quantize(data, options);
  EXPECT_TRUE(a == b);
}

TEST(Pq, DeserializeRejectsOutOfRangeCodes) {
  // A codebook trained on < 256 rows has k < 256; a corrupt code byte
  // indexing past it must be rejected, not read out of bounds later.
  const FeatureMatrix data = ClusteredMatrix(40, 12);  // k = 40
  PqOptions options;
  options.m = 3;
  options.train_iters = 2;
  const PqMatrix pq = PqMatrix::Quantize(data, options);
  ASSERT_LT(pq.codebook().k(), 256u);
  BinaryWriter writer;
  pq.Serialize(&writer);
  std::vector<uint8_t> bytes = writer.buffer();
  bytes.back() = 255;  // last code byte -> out of range
  BinaryReader reader(bytes);
  PqMatrix restored;
  EXPECT_FALSE(restored.Deserialize(&reader).ok());
}

TEST(Pq, SerializeRoundTrip) {
  const FeatureMatrix data = ClusteredMatrix(200, 20);
  PqOptions options;
  options.m = 5;
  options.train_iters = 3;
  const PqMatrix pq = PqMatrix::Quantize(data, options);
  BinaryWriter writer;
  pq.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  PqMatrix restored;
  ASSERT_TRUE(restored.Deserialize(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_TRUE(restored == pq);
}

// ---------------------------------------------------------------------------
// QuantizedStore: the VectorIndex contract.

QuantizedStoreOptions Int8Options(size_t rerank = 4) {
  QuantizedStoreOptions options;
  options.backing = QuantBacking::kInt8;
  options.rerank_factor = rerank;
  return options;
}

QuantizedStoreOptions PqStoreOptions(size_t m, size_t rerank = 8) {
  QuantizedStoreOptions options;
  options.backing = QuantBacking::kPq;
  options.rerank_factor = rerank;
  options.pq.m = m;
  options.pq.train_iters = 5;
  return options;
}

TEST(QuantizedStore, KnnMatchesExactScanAfterRerank) {
  const FeatureMatrix data = ClusteredMatrix(2000, 32);
  const std::vector<Vec> queries = PerturbedQueries(data, 16);
  for (const MetricKind metric :
       {MetricKind::kL2, MetricKind::kL1, MetricKind::kCosine}) {
    LinearScanIndex exact(MakeMetric(metric));
    ASSERT_TRUE(exact.BuildFromMatrix(data).ok());
    QuantizedStore store(MakeMetric(metric), Int8Options(8));
    ASSERT_TRUE(store.BuildFromMatrix(data).ok());
    for (const Vec& q : queries) {
      const auto want = KnnSearch(exact, q, 10);
      const auto got = KnnSearch(store, q, 10);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id)
            << MetricKindName(metric) << " rank " << i;
        EXPECT_DOUBLE_EQ(got[i].distance, want[i].distance);
      }
    }
  }
}

TEST(QuantizedStore, RangeSearchIsExactForAllEngineMetrics) {
  const FeatureMatrix data = ClusteredMatrix(1200, 24);
  const std::vector<Vec> queries = PerturbedQueries(data, 8);
  for (const MetricKind metric :
       {MetricKind::kL1, MetricKind::kL2, MetricKind::kLInf,
        MetricKind::kHistogramIntersection, MetricKind::kChiSquare,
        MetricKind::kHellinger, MetricKind::kCosine}) {
    LinearScanIndex exact(MakeMetric(metric));
    ASSERT_TRUE(exact.BuildFromMatrix(data).ok());
    for (const QuantizedStoreOptions& options :
         {Int8Options(), PqStoreOptions(6)}) {
      QuantizedStore store(MakeMetric(metric), options);
      ASSERT_TRUE(store.BuildFromMatrix(data).ok());
      for (const Vec& q : queries) {
        // A radius that catches a handful of rows on this workload.
        const double radius = KnnSearch(exact, q, 8).back().distance;
        const auto want = RangeSearch(exact, q, radius);
        const auto got = RangeSearch(store, q, radius);
        ASSERT_EQ(got.size(), want.size())
            << MetricKindName(metric) << "/"
            << QuantBackingName(options.backing);
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(got[i].id, want[i].id);
          EXPECT_DOUBLE_EQ(got[i].distance, want[i].distance);
        }
      }
    }
  }
}

TEST(QuantizedStore, PqKnnWithRerankRecoversExactTopK) {
  const FeatureMatrix data = ClusteredMatrix(2000, 32);
  const std::vector<Vec> queries = PerturbedQueries(data, 16);
  LinearScanIndex exact(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(exact.BuildFromMatrix(data).ok());
  QuantizedStore store(MakeMetric(MetricKind::kL2), PqStoreOptions(8, 16));
  ASSERT_TRUE(store.BuildFromMatrix(data).ok());
  size_t hits = 0, total = 0;
  for (const Vec& q : queries) {
    const auto want = KnnSearch(exact, q, 10);
    const auto got = KnnSearch(store, q, 10);
    ASSERT_EQ(got.size(), want.size());
    total += want.size();
    for (const Neighbor& w : want) {
      for (const Neighbor& g : got) {
        if (g.id == w.id) {
          ++hits;
          break;
        }
      }
    }
  }
  // PQ is lossier than int8; with a 16x over-fetch on this clustered
  // workload recall@10 stays essentially perfect.
  EXPECT_GE(static_cast<double>(hits), 0.95 * static_cast<double>(total));
}

TEST(QuantizedStore, StatsCountApproxScanAndRerank) {
  const FeatureMatrix data = ClusteredMatrix(1000, 16);
  QuantizedStore store(MakeMetric(MetricKind::kL2), Int8Options(4));
  ASSERT_TRUE(store.BuildFromMatrix(data).ok());
  SearchStats stats;
  const Vec q = data.RowVec(3);
  (void)store.KnnSearch(q, 5, &stats);
  // The two stages report separately: 1000 approximate (compressed-
  // domain) evals in distance_evals, 5 * rerank_factor = 20 exact
  // rerank evals in rerank_evals.
  EXPECT_EQ(stats.distance_evals, 1000u);
  EXPECT_EQ(stats.rerank_evals, 20u);
  EXPECT_GT(stats.leaves_visited, 0u);
}

TEST(QuantizedStore, EmptyAndDegenerateInputs) {
  QuantizedStore store(MakeMetric(MetricKind::kL2), Int8Options());
  ASSERT_TRUE(store.Build({}).ok());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(KnnSearch(store, {1.0f, 2.0f}, 3).empty());
  EXPECT_TRUE(RangeSearch(store, {1.0f, 2.0f}, 10.0).empty());

  ASSERT_TRUE(store.Build({{1.0f, 2.0f}, {3.0f, 4.0f}}).ok());
  EXPECT_EQ(store.size(), 2u);
  const auto all = KnnSearch(store, {1.0f, 2.0f}, 10);  // k > n
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, 0u);
  EXPECT_EQ(KnnSearch(store, {1.0f, 2.0f}, 0).size(), 0u);

  QuantizedStore bad(MakeMetric(MetricKind::kL2), Int8Options());
  EXPECT_FALSE(bad.Build({{}, {}}).ok());  // zero-dim vectors
}

TEST(QuantizedStore, SerializeRoundTripPreservesSearchResults) {
  const FeatureMatrix data = ClusteredMatrix(600, 24);
  const std::vector<Vec> queries = PerturbedQueries(data, 6);
  for (const QuantizedStoreOptions& options :
       {Int8Options(), PqStoreOptions(6)}) {
    QuantizedStore store(MakeMetric(MetricKind::kL2), options);
    ASSERT_TRUE(store.BuildFromMatrix(data).ok());
    BinaryWriter writer;
    store.Serialize(&writer);
    BinaryReader reader(writer.buffer());
    QuantizedStore restored(MakeMetric(MetricKind::kL2), options);
    ASSERT_TRUE(restored.Deserialize(&reader).ok());
    EXPECT_TRUE(reader.AtEnd());
    EXPECT_EQ(restored.size(), store.size());
    EXPECT_EQ(restored.dim(), store.dim());
    EXPECT_EQ(restored.max_reconstruction_error(),
              store.max_reconstruction_error());
    for (const Vec& q : queries) {
      const auto want = KnnSearch(store, q, 7);
      const auto got = KnnSearch(restored, q, 7);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id);
        EXPECT_EQ(got[i].distance, want[i].distance);
      }
    }
  }
}

TEST(QuantizedStore, DeserializeRejectsTruncatedPayload) {
  const FeatureMatrix data = ClusteredMatrix(50, 8);
  QuantizedStore store(MakeMetric(MetricKind::kL2), Int8Options());
  ASSERT_TRUE(store.BuildFromMatrix(data).ok());
  BinaryWriter writer;
  store.Serialize(&writer);
  std::vector<uint8_t> truncated(writer.buffer().begin(),
                                 writer.buffer().end() - 9);
  BinaryReader reader(truncated);
  QuantizedStore restored(MakeMetric(MetricKind::kL2), Int8Options());
  EXPECT_FALSE(restored.Deserialize(&reader).ok());
}

TEST(QuantizedStore, MemoryAccountingSeparatesScanAndExactBytes) {
  const FeatureMatrix data = ClusteredMatrix(4096, 64);
  QuantizedStore int8_store(MakeMetric(MetricKind::kL2), Int8Options());
  ASSERT_TRUE(int8_store.BuildFromMatrix(data).ok());
  // Scan backing is ~1/4 of the float bytes (64-dim rows, no padding).
  EXPECT_LE(int8_store.ScanBackingBytes() * 100,
            int8_store.ExactRowBytes() * 27);
  EXPECT_GE(int8_store.MemoryBytes(),
            int8_store.ScanBackingBytes() + int8_store.ExactRowBytes());

  QuantizedStore pq_store(MakeMetric(MetricKind::kL2), PqStoreOptions(8));
  ASSERT_TRUE(pq_store.BuildFromMatrix(data).ok());
  // >= 8x compression of the scan path, codebook included.
  EXPECT_LE(pq_store.ScanBackingBytes() * 8, pq_store.ExactRowBytes());
}

// ---------------------------------------------------------------------------
// Engine integration: knobs, validation, persistence, sharded rollout.

EngineConfig QuantEngineConfig(QuantizationKind quant, size_t shards,
                               MetricKind metric = MetricKind::kL2) {
  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = metric;
  config.quantization = quant;
  config.shards = shards;
  config.pq_m = 8;
  config.rerank_factor = 8;
  return config;
}

std::vector<Vec> EngineWorkload(size_t count, size_t dim) {
  VectorWorkloadSpec spec;
  spec.count = count;
  spec.dim = dim;
  spec.seed = 11;
  return GenerateVectors(spec);
}

CbirEngine MakeVectorEngine(const EngineConfig& config,
                            const std::vector<Vec>& data) {
  CbirEngine engine(FeatureExtractor(), config);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(
        engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
  }
  return engine;
}

TEST(QuantizedEngine, QuantizationRequiresLinearScanIndex) {
  EngineConfig config = QuantEngineConfig(QuantizationKind::kInt8, 1);
  config.index_kind = IndexKind::kVpTree;
  const auto index = MakeIndex(config);
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
}

TEST(QuantizedEngine, QuantizedIndexNamesReflectBacking) {
  const auto int8_index =
      MakeIndex(QuantEngineConfig(QuantizationKind::kInt8, 1));
  ASSERT_TRUE(int8_index.ok());
  EXPECT_EQ(int8_index.value()->Name(), "quant_int8(l2,rerank=8)");
  const auto pq_index = MakeIndex(QuantEngineConfig(QuantizationKind::kPq, 1));
  ASSERT_TRUE(pq_index.ok());
  EXPECT_EQ(pq_index.value()->Name(), "quant_pq(m=8,l2,rerank=8)");
}

TEST(QuantizedEngine, ShardedAndFlatReturnIdenticalIdsAfterRerank) {
  const std::vector<Vec> data = EngineWorkload(3000, 24);
  const size_t k = 10;
  for (const QuantizationKind quant :
       {QuantizationKind::kInt8, QuantizationKind::kPq}) {
    CbirEngine flat = MakeVectorEngine(QuantEngineConfig(quant, 1), data);
    std::vector<Vec> queries;
    {
      VectorWorkloadSpec spec;
      spec.count = data.size();
      spec.dim = 24;
      spec.seed = 11;
      queries = GenerateQueries(spec, data, QueryMode::kPerturbedData, 24,
                                0.05, 999);
    }
    const auto flat_result = flat.QueryKnnBatchByVectors(queries, k, 2);
    ASSERT_TRUE(flat_result.ok());
    for (const size_t shards : {3u, 5u}) {
      CbirEngine sharded =
          MakeVectorEngine(QuantEngineConfig(quant, shards), data);
      const auto sharded_result =
          sharded.QueryKnnBatchByVectors(queries, k, 4);
      ASSERT_TRUE(sharded_result.ok());
      ASSERT_EQ(sharded_result.value().size(), flat_result.value().size());
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        const auto& want = flat_result.value()[qi];
        const auto& got = sharded_result.value()[qi];
        ASSERT_EQ(got.size(), want.size())
            << QuantizationKindName(quant) << " shards=" << shards;
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(got[i].id, want[i].id)
              << QuantizationKindName(quant) << " shards=" << shards
              << " query=" << qi << " rank=" << i;
          EXPECT_DOUBLE_EQ(got[i].distance, want[i].distance);
        }
      }
    }
  }
}

TEST(QuantizedEngine, QuantizedMatchesUnquantizedAfterRerank) {
  const std::vector<Vec> data = EngineWorkload(2000, 24);
  CbirEngine exact =
      MakeVectorEngine(QuantEngineConfig(QuantizationKind::kNone, 1), data);
  CbirEngine quant =
      MakeVectorEngine(QuantEngineConfig(QuantizationKind::kInt8, 1), data);
  const Vec query = data[42];
  const auto want = exact.QueryKnnByVector(query, 10);
  const auto got = quant.QueryKnnByVector(query, 10);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().size(), want.value().size());
  for (size_t i = 0; i < want.value().size(); ++i) {
    EXPECT_EQ(got.value()[i].id, want.value()[i].id) << "rank " << i;
    EXPECT_DOUBLE_EQ(got.value()[i].distance, want.value()[i].distance);
  }
}

TEST(QuantizedEngine, SaveLoadPreservesQuantizationConfig) {
  const std::string path =
      ::testing::TempDir() + "/cbix_quant_engine_" +
      std::to_string(::getpid()) + ".bin";
  const std::vector<Vec> data = EngineWorkload(300, 16);
  {
    CbirEngine engine =
        MakeVectorEngine(QuantEngineConfig(QuantizationKind::kInt8, 1), data);
    ASSERT_TRUE(engine.BuildIndex().ok());
    ASSERT_TRUE(engine.Save(path).ok());
  }
  CbirEngine restored(FeatureExtractor(),
                      QuantEngineConfig(QuantizationKind::kNone, 1));
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.config().quantization, QuantizationKind::kInt8);
  EXPECT_EQ(restored.config().pq_m, 8u);
  EXPECT_EQ(restored.config().rerank_factor, 8u);
  ASSERT_NE(restored.index(), nullptr);
  EXPECT_EQ(restored.index()->Name(), "quant_int8(l2,rerank=8)");
  const auto result = restored.QueryKnnByVector(data[5], 3);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().empty());
  EXPECT_EQ(result.value()[0].id, 5u);
  std::remove(path.c_str());
}

TEST(QuantizedEngine, ShardedEngineLoadsFlatQuantizedFileViaRebuild) {
  // The persisted quantized payload is flat; a loading engine with
  // shards > 1 must skip it and rebuild per shard, not error.
  const std::string path = ::testing::TempDir() + "/cbix_quant_shard_" +
                           std::to_string(::getpid()) + ".bin";
  const std::vector<Vec> data = EngineWorkload(400, 16);
  {
    CbirEngine engine =
        MakeVectorEngine(QuantEngineConfig(QuantizationKind::kInt8, 1), data);
    ASSERT_TRUE(engine.BuildIndex().ok());
    ASSERT_TRUE(engine.Save(path).ok());
  }
  EngineConfig sharded_config = QuantEngineConfig(QuantizationKind::kNone, 1);
  sharded_config.shards = 3;
  CbirEngine restored(FeatureExtractor(), sharded_config);
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.config().quantization, QuantizationKind::kInt8);
  const auto result = restored.QueryKnnByVector(data[7], 5);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().empty());
  EXPECT_EQ(result.value()[0].id, 7u);
  std::remove(path.c_str());
}

TEST(QuantizedEngine, LoadsVersion1FilesWithQuantizationDefaultedOff) {
  // Hand-written v1 layout: index_kind, metric, dim, store bytes — no
  // quantization fields, no index payload.
  const std::string path = ::testing::TempDir() + "/cbix_quant_v1_" +
                           std::to_string(::getpid()) + ".bin";
  const std::vector<Vec> data = EngineWorkload(100, 16);
  FeatureStore store;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(
        store.Add({"v" + std::to_string(i), -1, data[i]}).ok());
  }
  BinaryWriter writer;
  writer.Write<uint32_t>(static_cast<uint32_t>(IndexKind::kLinearScan));
  writer.Write<uint32_t>(static_cast<uint32_t>(MetricKind::kL2));
  // v1 wrote extractor_.dim(); a vector-workload engine's default
  // extractor reports 0 (the loader validates against the same).
  writer.Write<uint64_t>(0);
  std::vector<uint8_t> store_bytes;
  store.Serialize(&store_bytes);
  writer.WriteVector(store_bytes);
  ASSERT_TRUE(
      WriteFramedFile(path, 0x43425845u, 1, writer.buffer()).ok());

  CbirEngine restored(FeatureExtractor(),
                      QuantEngineConfig(QuantizationKind::kPq, 1));
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.config().quantization, QuantizationKind::kNone);
  const auto result = restored.QueryKnnByVector(data[3], 5);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().empty());
  EXPECT_EQ(result.value()[0].id, 3u);
  std::remove(path.c_str());
}

TEST(QuantizedEngine, SaveLoadRestoresPqBackingWithIdenticalResults) {
  // A built quantized engine persists its codes and codebooks; Load
  // restores them instead of re-training, and answers identically.
  const std::string path = ::testing::TempDir() + "/cbix_quant_pq_" +
                           std::to_string(::getpid()) + ".bin";
  const std::vector<Vec> data = EngineWorkload(800, 16);
  std::vector<std::vector<CbirEngine::Match>> want;
  {
    CbirEngine engine =
        MakeVectorEngine(QuantEngineConfig(QuantizationKind::kPq, 1), data);
    ASSERT_TRUE(engine.BuildIndex().ok());
    for (size_t i = 0; i < 5; ++i) {
      const auto r = engine.QueryKnnByVector(data[i * 31], 10);
      ASSERT_TRUE(r.ok());
      want.push_back(r.value());
    }
    ASSERT_TRUE(engine.Save(path).ok());
  }
  CbirEngine restored(FeatureExtractor(),
                      QuantEngineConfig(QuantizationKind::kNone, 1));
  ASSERT_TRUE(restored.Load(path).ok());
  ASSERT_NE(restored.index(), nullptr);
  const auto* quant = dynamic_cast<const QuantizedStore*>(restored.index());
  ASSERT_NE(quant, nullptr);
  EXPECT_EQ(quant->options().backing, QuantBacking::kPq);
  for (size_t i = 0; i < want.size(); ++i) {
    const auto got = restored.QueryKnnByVector(data[i * 31], 10);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value().size(), want[i].size());
    for (size_t r = 0; r < want[i].size(); ++r) {
      EXPECT_EQ(got.value()[r].id, want[i][r].id);
      EXPECT_EQ(got.value()[r].distance, want[i][r].distance);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cbix
