#include "image/image.h"

#include <gtest/gtest.h>

namespace cbix {
namespace {

TEST(ImageTest, ConstructionAndFill) {
  ImageU8 img(4, 3, 2, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 2);
  EXPECT_EQ(img.PixelCount(), 12u);
  EXPECT_EQ(img.data().size(), 24u);
  for (uint8_t v : img.data()) EXPECT_EQ(v, 7);
}

TEST(ImageTest, AtReadsAndWrites) {
  ImageF img(3, 3, 1);
  img.at(2, 1) = 0.5f;
  EXPECT_EQ(img.at(2, 1), 0.5f);
  EXPECT_EQ(img.at(0, 0), 0.0f);
}

TEST(ImageTest, AtClampedReplicatesBorder) {
  ImageF img(2, 2, 1);
  img.at(0, 0) = 1.0f;
  img.at(1, 0) = 2.0f;
  img.at(0, 1) = 3.0f;
  img.at(1, 1) = 4.0f;
  EXPECT_EQ(img.AtClamped(-5, -5), 1.0f);
  EXPECT_EQ(img.AtClamped(10, 0), 2.0f);
  EXPECT_EQ(img.AtClamped(0, 10), 3.0f);
  EXPECT_EQ(img.AtClamped(99, 99), 4.0f);
}

TEST(ImageTest, FillChannelTouchesOnlyThatChannel) {
  ImageU8 img(2, 2, 3, 0);
  img.FillChannel(1, 9);
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) {
      EXPECT_EQ(img.at(x, y, 0), 0);
      EXPECT_EQ(img.at(x, y, 1), 9);
      EXPECT_EQ(img.at(x, y, 2), 0);
    }
  }
}

TEST(ImageTest, ToFloatToU8RoundTrip) {
  ImageU8 img(3, 2, 3);
  uint8_t v = 0;
  for (auto& s : img.data()) s = v += 17;
  const ImageU8 round = ToU8(ToFloat(img));
  EXPECT_EQ(round, img);
}

TEST(ImageTest, ToU8Clamps) {
  ImageF img(1, 1, 1);
  img.at(0, 0) = 2.5f;
  EXPECT_EQ(ToU8(img).at(0, 0), 255);
  img.at(0, 0) = -1.0f;
  EXPECT_EQ(ToU8(img).at(0, 0), 0);
}

TEST(ImageTest, ExtractChannel) {
  ImageU8 img(2, 1, 3);
  img.at(0, 0, 1) = 10;
  img.at(1, 0, 1) = 20;
  const ImageU8 g = ExtractChannel(img, 1);
  EXPECT_EQ(g.channels(), 1);
  EXPECT_EQ(g.at(0, 0), 10);
  EXPECT_EQ(g.at(1, 0), 20);
}

TEST(ImageTest, CropTakesExactRegion) {
  ImageU8 img(4, 4, 1);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      img.at(x, y) = static_cast<uint8_t>(y * 4 + x);
    }
  }
  const ImageU8 crop = Crop(img, 1, 2, 2, 2);
  EXPECT_EQ(crop.width(), 2);
  EXPECT_EQ(crop.height(), 2);
  EXPECT_EQ(crop.at(0, 0), 9);   // (1,2)
  EXPECT_EQ(crop.at(1, 1), 14);  // (2,3)
}

TEST(ImageTest, FlipHorizontalMirrorsColumns) {
  ImageU8 img(3, 1, 1);
  img.at(0, 0) = 1;
  img.at(1, 0) = 2;
  img.at(2, 0) = 3;
  const ImageU8 flipped = FlipHorizontal(img);
  EXPECT_EQ(flipped.at(0, 0), 3);
  EXPECT_EQ(flipped.at(1, 0), 2);
  EXPECT_EQ(flipped.at(2, 0), 1);
}

TEST(ImageTest, FlipTwiceIsIdentity) {
  ImageU8 img(5, 4, 3);
  uint8_t v = 0;
  for (auto& s : img.data()) s = ++v;
  EXPECT_EQ(FlipHorizontal(FlipHorizontal(img)), img);
}

TEST(ImageTest, Rotate90Shapes) {
  ImageU8 img(4, 2, 1);
  const ImageU8 r1 = Rotate90(img, 1);
  EXPECT_EQ(r1.width(), 2);
  EXPECT_EQ(r1.height(), 4);
  const ImageU8 r2 = Rotate90(img, 2);
  EXPECT_EQ(r2.width(), 4);
  EXPECT_EQ(r2.height(), 2);
}

TEST(ImageTest, RotateFourTimesIsIdentity) {
  ImageU8 img(3, 5, 2);
  uint8_t v = 0;
  for (auto& s : img.data()) s = ++v;
  ImageU8 rotated = img;
  for (int i = 0; i < 4; ++i) rotated = Rotate90(rotated, 1);
  EXPECT_EQ(rotated, img);
}

TEST(ImageTest, RotateNegativeEqualsComplement) {
  ImageU8 img(3, 2, 1);
  uint8_t v = 0;
  for (auto& s : img.data()) s = ++v;
  EXPECT_EQ(Rotate90(img, -1), Rotate90(img, 3));
}

TEST(ImageTest, Rotate90MovesPixelCorrectly) {
  ImageU8 img(3, 2, 1, 0);
  img.at(2, 0) = 99;  // top-right corner
  // 90° CCW: top-right -> top-left (x=y, y=W-1-x).
  const ImageU8 r = Rotate90(img, 1);
  EXPECT_EQ(r.at(0, 0), 99);
}

}  // namespace
}  // namespace cbix
