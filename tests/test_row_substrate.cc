// RowView — the shared row substrate (PR 4): copy-on-write semantics,
// ownership-aware memory accounting, and the acceptance criterion that
// float rows are resident once across the store + index pair.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "corpus/vector_workload.h"
#include "distance/minkowski.h"
#include "index/index.h"
#include "index/linear_scan.h"
#include "index/rtree.h"

namespace cbix {
namespace {

std::vector<Vec> ClusteredData(size_t n, size_t dim, uint64_t seed = 21) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = n;
  spec.dim = dim;
  spec.seed = seed;
  return GenerateVectors(spec);
}

FeatureMatrix SmallMatrix() {
  FeatureMatrix m(3);
  m.AppendRow(Vec{1.0f, 2.0f, 3.0f});
  m.AppendRow(Vec{4.0f, 5.0f, 6.0f});
  return m;
}

TEST(RowViewTest, EmptyViewIsEmpty) {
  RowView view;
  EXPECT_EQ(view.count(), 0u);
  EXPECT_EQ(view.dim(), 0u);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.OwnedMemoryBytes(), 0u);
  EXPECT_EQ(view.SubstrateBytes(), 0u);
  EXPECT_FALSE(view.shared());
  EXPECT_EQ(view.matrix().count(), 0u);
}

TEST(RowViewTest, AdoptSharesZeroCopy) {
  RowView a = RowView::Adopt(SmallMatrix());
  const float* row0 = a.row(0);
  RowView b = a;  // share, no copy
  EXPECT_TRUE(a.shared());
  EXPECT_TRUE(b.shared());
  EXPECT_EQ(b.row(0), row0);  // literally the same buffer
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.dim(), 3u);
}

TEST(RowViewTest, AppendCopiesOnWriteWhenShared) {
  RowView a = RowView::Adopt(SmallMatrix());
  RowView b = a;
  const float* b_row0 = b.row(0);

  a.AppendRow(Vec{7.0f, 8.0f, 9.0f});
  // a forked a private substrate; b's snapshot is untouched.
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.row(0), b_row0);
  EXPECT_FALSE(a.shared());
  EXPECT_FALSE(b.shared());
  EXPECT_EQ(a.row(2)[0], 7.0f);
  EXPECT_EQ(a.row(0)[0], 1.0f);  // prefix rows copied over
}

TEST(RowViewTest, AppendInPlaceWhenUnique) {
  RowView a = RowView::Adopt(SmallMatrix());
  a.Reserve(8);
  const float* row0 = a.row(0);
  a.AppendRow(Vec{7.0f, 8.0f, 9.0f});
  // Sole owner with reserved capacity: no reallocation, no fork.
  EXPECT_EQ(a.row(0), row0);
  EXPECT_EQ(a.count(), 3u);
}

TEST(RowViewTest, AppendIntoEmptyViewCreatesSubstrate) {
  RowView view;
  view.AppendRow(Vec{1.0f, 2.0f});
  EXPECT_EQ(view.count(), 1u);
  EXPECT_EQ(view.dim(), 2u);
  EXPECT_GT(view.SubstrateBytes(), 0u);
}

TEST(RowViewTest, OwnedBytesDropToZeroWhenShared) {
  RowView a = RowView::Adopt(SmallMatrix());
  const size_t bytes = a.OwnedMemoryBytes();
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(bytes, a.SubstrateBytes());
  {
    RowView b = a;
    // Shared: neither view claims the buffer (the owner of record —
    // a store — would); substrate bytes stay reported unconditionally.
    EXPECT_EQ(a.OwnedMemoryBytes(), 0u);
    EXPECT_EQ(b.OwnedMemoryBytes(), 0u);
    EXPECT_EQ(a.SubstrateBytes(), bytes);
  }
  EXPECT_EQ(a.OwnedMemoryBytes(), bytes);  // sole owner again
}

TEST(RowViewTest, CopyIsIndependentOfSource) {
  FeatureMatrix source = SmallMatrix();
  RowView view = RowView::Copy(source);
  source.AppendRow(Vec{9.0f, 9.0f, 9.0f});
  EXPECT_EQ(view.count(), 2u);
  EXPECT_EQ(source.count(), 3u);
}

// ---------------------------------------------------------------------------
// The engine path: index and store share one substrate.

TEST(SharedSubstrateTest, IndexSharesStoreRows) {
  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = MetricKind::kL2;
  CbirEngine engine((FeatureExtractor()), config);
  const auto data = ClusteredData(512, 64);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(
        engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(engine.BuildIndex().ok());
  const auto* scan = dynamic_cast<const LinearScanIndex*>(engine.index());
  ASSERT_NE(scan, nullptr);
  // Zero-copy: the index scans the very buffer the store owns.
  EXPECT_EQ(scan->matrix().data(), engine.store().matrix().data());
}

TEST(SharedSubstrateTest, FlatEngineRowsResidentOnce) {
  // Acceptance criterion: for a built flat linear-scan engine,
  // IndexMemoryBytes() + store().MemoryBytes() must be >= 1.8x smaller
  // than the pre-PR double-resident layout (store matrix + a full
  // private index copy of it).
  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = MetricKind::kL2;
  CbirEngine engine((FeatureExtractor()), config);
  const auto data = ClusteredData(2048, 128);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(
        engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(engine.BuildIndex().ok());

  const size_t substrate = engine.store().matrix().MemoryBytes();
  ASSERT_GT(substrate, 2048u * 128u * sizeof(float) - 1);
  const size_t resident =
      engine.IndexMemoryBytes() + engine.store().MemoryBytes();
  const size_t double_resident = engine.store().MemoryBytes() + substrate;
  EXPECT_GE(double_resident * 10, resident * 18)
      << "rows are still resident twice: resident=" << resident
      << " double_resident=" << double_resident;
  // And the index itself holds no private row copy at all.
  EXPECT_LT(engine.IndexMemoryBytes(), substrate / 10);
}

TEST(SharedSubstrateTest, EveryIndexKindSharesRows) {
  // For each index kind, the engine-built index must not claim the
  // substrate in MemoryBytes (it shares the store's), while the same
  // index built standalone over its own matrix must.
  const auto data = ClusteredData(600, 32);
  const size_t row_bytes = 600 * 32 * sizeof(float);
  for (IndexKind kind :
       {IndexKind::kLinearScan, IndexKind::kVpTree, IndexKind::kKdTree,
        IndexKind::kRTree, IndexKind::kMTree}) {
    EngineConfig config;
    config.index_kind = kind;
    config.metric = MetricKind::kL2;
    CbirEngine engine((FeatureExtractor()), config);
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(
          engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(engine.BuildIndex().ok());

    auto standalone = MakeIndex(config);
    ASSERT_TRUE(standalone.ok());
    ASSERT_TRUE((*standalone)->Build(data).ok());

    // Shared build: no private row copy. Standalone build: the index
    // uniquely owns its substrate, so it reports at least the rows.
    EXPECT_LT(engine.IndexMemoryBytes() + row_bytes,
              (*standalone)->MemoryBytes() + row_bytes / 2)
        << IndexKindName(kind);
  }
}

TEST(SharedSubstrateTest, AddAfterBuildKeepsSnapshotStable) {
  // Copy-on-write: appending to the store after a build must not move
  // or grow the buffer the built index is scanning.
  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = MetricKind::kL2;
  CbirEngine engine((FeatureExtractor()), config);
  const auto data = ClusteredData(256, 16);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(
        engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(engine.BuildIndex().ok());
  const auto* scan = dynamic_cast<const LinearScanIndex*>(engine.index());
  ASSERT_NE(scan, nullptr);
  const float* snapshot = scan->matrix().data();
  const auto before = KnnSearch(*scan, data[7], 5);

  ASSERT_TRUE(engine.AddFeatureVector(data[0], "extra").ok());
  EXPECT_EQ(scan->matrix().data(), snapshot);
  EXPECT_EQ(scan->matrix().count(), 256u);
  EXPECT_EQ(engine.store().size(), 257u);
  const auto after = KnnSearch(*scan, data[7], 5);
  EXPECT_EQ(before, after);

  // The next query rebuilds over the appended substrate and sees the
  // new row.
  const auto result = engine.QueryKnnByVector(data[0], 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(result->at(1).name, "extra");
  EXPECT_NEAR(result->at(1).distance, 0.0, 1e-12);
}

TEST(SharedSubstrateTest, DynamicInsertAfterSharedBuildForksSubstrate) {
  // An R-tree built over shared rows that is then grown dynamically
  // must fork the substrate (COW), leaving the original matrix intact.
  FeatureMatrix matrix = FeatureMatrix::FromVectors(ClusteredData(100, 8));
  RowView store_rows = RowView::Adopt(std::move(matrix));

  RTreeOptions options;
  options.bulk_load = false;
  RTree tree(options);
  ASSERT_TRUE(tree.BuildFromRows(store_rows).ok());
  EXPECT_EQ(tree.size(), 100u);

  ASSERT_TRUE(tree.Insert(Vec(8, 0.25f)).ok());
  EXPECT_EQ(tree.size(), 101u);
  EXPECT_EQ(store_rows.count(), 100u);  // owner's snapshot unchanged

  const auto hits = RangeSearch(tree, Vec(8, 0.25f), 1e-6);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, 100u);
}

TEST(SharedSubstrateTest, QuantizedIndexAddsOnlyCodesOverStoreRows) {
  // With rerank rows shared with the store, the quantized index's own
  // footprint is just its codes — far below the float substrate it
  // used to duplicate (the pre-substrate layout held every row twice
  // on the index side: once as codes, once as retained floats).
  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = MetricKind::kL2;
  config.quantization = QuantizationKind::kInt8;
  CbirEngine engine((FeatureExtractor()), config);
  const auto data = ClusteredData(1024, 64);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(
        engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(engine.BuildIndex().ok());
  EXPECT_LT(engine.IndexMemoryBytes(),
            engine.store().matrix().MemoryBytes() / 2);
}

}  // namespace
}  // namespace cbix
