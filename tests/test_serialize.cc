#include "util/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace cbix {
namespace {

TEST(Crc32Test, KnownVector) {
  // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
  const char* data = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, SensitiveToSingleBit) {
  uint8_t a[4] = {1, 2, 3, 4};
  uint8_t b[4] = {1, 2, 3, 5};
  EXPECT_NE(Crc32(a, 4), Crc32(b, 4));
}

TEST(BinaryRoundTripTest, Scalars) {
  BinaryWriter w;
  w.Write<int32_t>(-7);
  w.Write<uint64_t>(123456789ULL);
  w.Write<double>(3.25);
  w.Write<uint8_t>(255);

  BinaryReader r(w.buffer());
  int32_t i = 0;
  uint64_t u = 0;
  double d = 0;
  uint8_t b = 0;
  ASSERT_TRUE(r.Read(&i).ok());
  ASSERT_TRUE(r.Read(&u).ok());
  ASSERT_TRUE(r.Read(&d).ok());
  ASSERT_TRUE(r.Read(&b).ok());
  EXPECT_EQ(i, -7);
  EXPECT_EQ(u, 123456789ULL);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(b, 255);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryRoundTripTest, StringsAndVectors) {
  BinaryWriter w;
  w.WriteString("hello cbix");
  w.WriteString("");
  w.WriteVector(std::vector<float>{1.5f, -2.5f, 0.0f});
  w.WriteVector(std::vector<uint32_t>{});

  BinaryReader r(w.buffer());
  std::string s1, s2;
  std::vector<float> vf;
  std::vector<uint32_t> vu;
  ASSERT_TRUE(r.ReadString(&s1).ok());
  ASSERT_TRUE(r.ReadString(&s2).ok());
  ASSERT_TRUE(r.ReadVector(&vf).ok());
  ASSERT_TRUE(r.ReadVector(&vu).ok());
  EXPECT_EQ(s1, "hello cbix");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(vf, (std::vector<float>{1.5f, -2.5f, 0.0f}));
  EXPECT_TRUE(vu.empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryReaderTest, UnderflowIsCorruption) {
  BinaryWriter w;
  w.Write<uint16_t>(7);
  BinaryReader r(w.buffer());
  uint64_t big = 0;
  EXPECT_EQ(r.Read(&big).code(), StatusCode::kCorruption);
}

TEST(BinaryReaderTest, OversizedVectorLengthRejected) {
  BinaryWriter w;
  w.Write<uint64_t>(1ULL << 60);  // absurd length prefix
  BinaryReader r(w.buffer());
  std::vector<double> v;
  EXPECT_EQ(r.ReadVector(&v).code(), StatusCode::kCorruption);
}

TEST(BinaryReaderTest, OversizedStringLengthRejected) {
  BinaryWriter w;
  w.Write<uint64_t>(1000);
  w.Write<uint32_t>(0);  // only 4 bytes of payload follow
  BinaryReader r(w.buffer());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kCorruption);
}

class FramedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: sibling tests run as concurrent ctest processes.
    path_ = ::testing::TempDir() + "cbix_framed_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FramedFileTest, RoundTrip) {
  const std::vector<uint8_t> payload{1, 2, 3, 250, 251};
  ASSERT_TRUE(WriteFramedFile(path_, 0xABCD1234, 3, payload).ok());
  std::vector<uint8_t> loaded;
  ASSERT_TRUE(ReadFramedFile(path_, 0xABCD1234, 3, &loaded).ok());
  EXPECT_EQ(loaded, payload);
}

TEST_F(FramedFileTest, EmptyPayloadRoundTrip) {
  ASSERT_TRUE(WriteFramedFile(path_, 0x1, 1, {}).ok());
  std::vector<uint8_t> loaded{9, 9};
  ASSERT_TRUE(ReadFramedFile(path_, 0x1, 1, &loaded).ok());
  EXPECT_TRUE(loaded.empty());
}

TEST_F(FramedFileTest, WrongMagicRejected) {
  ASSERT_TRUE(WriteFramedFile(path_, 0xAAAA, 1, {1, 2}).ok());
  std::vector<uint8_t> loaded;
  EXPECT_EQ(ReadFramedFile(path_, 0xBBBB, 1, &loaded).code(),
            StatusCode::kCorruption);
}

TEST_F(FramedFileTest, WrongVersionRejected) {
  ASSERT_TRUE(WriteFramedFile(path_, 0xAAAA, 1, {1, 2}).ok());
  std::vector<uint8_t> loaded;
  EXPECT_EQ(ReadFramedFile(path_, 0xAAAA, 2, &loaded).code(),
            StatusCode::kCorruption);
}

TEST_F(FramedFileTest, CorruptedPayloadDetected) {
  ASSERT_TRUE(WriteFramedFile(path_, 0xAAAA, 1, {1, 2, 3, 4, 5}).ok());
  // Flip one payload byte on disk.
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 20 + 2, SEEK_SET);  // header is 20 bytes
  std::fputc(0x7f, f);
  std::fclose(f);
  std::vector<uint8_t> loaded;
  EXPECT_EQ(ReadFramedFile(path_, 0xAAAA, 1, &loaded).code(),
            StatusCode::kCorruption);
}

TEST_F(FramedFileTest, MissingFileIsIoError) {
  std::vector<uint8_t> loaded;
  EXPECT_EQ(ReadFramedFile(path_ + ".nope", 0xAAAA, 1, &loaded).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace cbix
