#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "status_matchers.h"

namespace cbix {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForTouchesEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  ASSERT_OK(
      pool.ParallelFor(kN, [&touched](size_t i) { touched[i].fetch_add(1); }));
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  ASSERT_OK(pool.ParallelFor(0, [&called](size_t) { called = true; }));
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  ASSERT_OK(pool.ParallelFor(
      3, [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); }));
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, WaitIdleWithNothingSubmitted) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 100);
}

// ----------------------------------------------------------------------
// Exception hardening: a throwing task must not terminate the process,
// wedge WaitIdle, or poison the pool for later work.

TEST(ThreadPoolExceptions, ThrowingSubmittedTaskDoesNotKillThePool) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.Submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&completed] { completed.fetch_add(1); });
  }
  pool.WaitIdle();  // must return — the decrement is never skipped
  EXPECT_EQ(completed.load(), 10);
  const Status status = pool.status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("task boom"), std::string::npos);

  // The failure is sticky until cleared, then the pool is clean again.
  pool.Submit([] {});
  pool.WaitIdle();
  EXPECT_FALSE(pool.status().ok());
  pool.ClearStatus();
  EXPECT_TRUE(pool.status().ok());
}

TEST(ThreadPoolExceptions, NonStdExceptionIsCapturedToo) {
  ThreadPool pool(1);
  pool.Submit([] { throw 42; });
  pool.WaitIdle();
  EXPECT_FALSE(pool.status().ok());
  pool.ClearStatus();
}

TEST(ThreadPoolExceptions, ParallelForReportsFirstThrowAndKeepsGoing) {
  ThreadPool pool(3);
  constexpr size_t kN = 500;
  std::vector<std::atomic<int>> touched(kN);
  const Status status = pool.ParallelFor(kN, [&touched](size_t i) {
    if (i == 250) throw std::runtime_error("iteration boom");
    touched[i].fetch_add(1);
  });
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("iteration boom"), std::string::npos);
  // An exception aborts only its own chunk; iterations in other chunks
  // (most of the range, with 500 indices over 12 chunks) still ran.
  size_t ran = 0;
  for (size_t i = 0; i < kN; ++i) ran += touched[i].load() != 0;
  EXPECT_GT(ran, kN / 2);

  // The next ParallelFor is independent and clean.
  const Status again =
      pool.ParallelFor(100, [&touched](size_t i) { touched[i].fetch_add(1); });
  EXPECT_TRUE(again.ok());
}

TEST(ThreadPoolExceptions, DestructionIsCleanAfterThrowingTasks) {
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([] { throw std::runtime_error("boom"); });
    }
    // Destructor joins workers that all saw exceptions — must not
    // terminate or hang.
  }
  SUCCEED();
}

}  // namespace
}  // namespace cbix
