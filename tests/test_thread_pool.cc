#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cbix {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForTouchesEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.ParallelFor(kN, [&touched](size_t i) { touched[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, WaitIdleWithNothingSubmitted) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace cbix
