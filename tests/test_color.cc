#include "image/color.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace cbix {
namespace {

TEST(ColorTest, PrimariesToHsv) {
  // Pure red: H=0, S=1, V=1.
  auto red = RgbToHsv(1, 0, 0);
  EXPECT_NEAR(red[0], 0.0f, 1e-6);
  EXPECT_NEAR(red[1], 1.0f, 1e-6);
  EXPECT_NEAR(red[2], 1.0f, 1e-6);
  // Pure green: H=1/3.
  auto green = RgbToHsv(0, 1, 0);
  EXPECT_NEAR(green[0], 1.0f / 3.0f, 1e-6);
  // Pure blue: H=2/3.
  auto blue = RgbToHsv(0, 0, 1);
  EXPECT_NEAR(blue[0], 2.0f / 3.0f, 1e-6);
}

TEST(ColorTest, AchromaticHasZeroSaturation) {
  for (float v : {0.0f, 0.25f, 1.0f}) {
    const auto hsv = RgbToHsv(v, v, v);
    EXPECT_EQ(hsv[0], 0.0f);
    EXPECT_EQ(hsv[1], 0.0f);
    EXPECT_NEAR(hsv[2], v, 1e-6);
  }
}

/// Property sweep: HSV -> RGB -> HSV round trips for random colours.
class HsvRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HsvRoundTrip, RgbToHsvToRgb) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const float r = static_cast<float>(rng.NextDouble());
    const float g = static_cast<float>(rng.NextDouble());
    const float b = static_cast<float>(rng.NextDouble());
    const auto hsv = RgbToHsv(r, g, b);
    const auto rgb = HsvToRgb(hsv[0], hsv[1], hsv[2]);
    EXPECT_NEAR(rgb[0], r, 1e-5);
    EXPECT_NEAR(rgb[1], g, 1e-5);
    EXPECT_NEAR(rgb[2], b, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HsvRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ColorTest, OpponentAxesInUnitRange) {
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const auto o = RgbToOpponent(static_cast<float>(rng.NextDouble()),
                                 static_cast<float>(rng.NextDouble()),
                                 static_cast<float>(rng.NextDouble()));
    for (float v : o) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(ColorTest, ToGrayWeightsSumToLuminance) {
  ImageF rgb(1, 1, 3);
  rgb.at(0, 0, 0) = 1.0f;
  rgb.at(0, 0, 1) = 1.0f;
  rgb.at(0, 0, 2) = 1.0f;
  EXPECT_NEAR(ToGray(rgb).at(0, 0), 1.0f, 1e-6);
  rgb.at(0, 0, 0) = 1.0f;
  rgb.at(0, 0, 1) = 0.0f;
  rgb.at(0, 0, 2) = 0.0f;
  EXPECT_NEAR(ToGray(rgb).at(0, 0), 0.299f, 1e-6);
}

TEST(ColorTest, ToGrayPassthroughForSingleChannel) {
  ImageF gray(2, 2, 1, 0.3f);
  EXPECT_EQ(ToGray(gray), gray);
}

TEST(ColorTest, ConvertColorSpaceShapes) {
  ImageF rgb(4, 4, 3, 0.5f);
  EXPECT_EQ(ConvertColorSpace(rgb, ColorSpace::kGray).channels(), 1);
  EXPECT_EQ(ConvertColorSpace(rgb, ColorSpace::kHsv).channels(), 3);
  EXPECT_EQ(ConvertColorSpace(rgb, ColorSpace::kOpponent).channels(), 3);
  EXPECT_EQ(ConvertColorSpace(rgb, ColorSpace::kRgb), rgb);
}

TEST(RgbUniformQuantizerTest, BinsCoverAndPartition) {
  RgbUniformQuantizer q(4);
  EXPECT_EQ(q.bin_count(), 64);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const int bin = q.BinOf(static_cast<float>(rng.NextDouble()),
                            static_cast<float>(rng.NextDouble()),
                            static_cast<float>(rng.NextDouble()));
    ASSERT_GE(bin, 0);
    ASSERT_LT(bin, 64);
  }
}

TEST(RgbUniformQuantizerTest, BinColorMapsBackToSameBin) {
  RgbUniformQuantizer q(4);
  for (int bin = 0; bin < q.bin_count(); ++bin) {
    const auto c = q.BinColor(bin);
    EXPECT_EQ(q.BinOf(c[0], c[1], c[2]), bin) << bin;
  }
}

TEST(RgbUniformQuantizerTest, BoundaryValuesClamped) {
  RgbUniformQuantizer q(4);
  EXPECT_EQ(q.BinOf(1.0f, 1.0f, 1.0f), q.bin_count() - 1);
  EXPECT_EQ(q.BinOf(0.0f, 0.0f, 0.0f), 0);
}

TEST(HsvQuantizerTest, BinColorMapsBackToSameBin) {
  HsvQuantizer q(18, 3, 3);
  EXPECT_EQ(q.bin_count(), 162);
  for (int bin = 0; bin < q.bin_count(); ++bin) {
    const auto c = q.BinColor(bin);
    EXPECT_EQ(q.BinOf(c[0], c[1], c[2]), bin) << bin;
  }
}

TEST(HsvQuantizerTest, SimilarHuesShareBins) {
  HsvQuantizer q(18, 3, 3);
  // Two nearby saturated reds must land in the same bin.
  EXPECT_EQ(q.BinOf(1.0f, 0.01f, 0.0f), q.BinOf(1.0f, 0.02f, 0.01f));
  // Red and green must differ.
  EXPECT_NE(q.BinOf(1.0f, 0.0f, 0.0f), q.BinOf(0.0f, 1.0f, 0.0f));
}

TEST(GrayQuantizerTest, LevelsPartitionIntensity) {
  GrayQuantizer q(8);
  EXPECT_EQ(q.bin_count(), 8);
  EXPECT_EQ(q.BinOf(0, 0, 0), 0);
  EXPECT_EQ(q.BinOf(1, 1, 1), 7);
  int prev = -1;
  for (int i = 0; i <= 100; ++i) {
    const float v = i / 100.0f;
    const int bin = q.BinOf(v, v, v);
    EXPECT_GE(bin, prev);  // monotone in intensity
    prev = bin;
  }
}

TEST(MakeQuantizerTest, HintsProduceReasonableSizes) {
  const auto rgb = MakeQuantizer(ColorSpace::kRgb, 64);
  EXPECT_EQ(rgb->bin_count(), 64);
  const auto hsv = MakeQuantizer(ColorSpace::kHsv, 162);
  EXPECT_EQ(hsv->bin_count(), 162);
  const auto gray = MakeQuantizer(ColorSpace::kGray, 16);
  EXPECT_EQ(gray->bin_count(), 16);
}

}  // namespace
}  // namespace cbix
