// SearchBatch equivalence suite: the batched query path must be
// bit-identical (ids AND distances) to the per-query path for every
// index shape the engine can build — tile sizes {1, 3, 16, 64} x all 7
// metrics x shards {1, 3} x quantization {none, int8, pq}, plus the
// tree indexes (VP-tree batched traversal, KD/R/M-tree base-class
// adapter) — and must handle the degenerate shapes (k = 0, k > n,
// empty query set, single-row store, empty index).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "index/index.h"
#include "index/query_block.h"
#include "index/top_k.h"
#include "index/linear_scan.h"
#include "quant/quantized_store.h"
#include "util/random.h"

namespace cbix {
namespace {

/// Random non-negative vectors (histogram-like, valid for every
/// measure) with occasional exact zeros; a few duplicated rows
/// exercise the (distance, id) tie-break through the collectors.
std::vector<Vec> RandomRows(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> rows;
  rows.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    Vec v(dim);
    for (auto& x : v) {
      const double u = rng.NextDouble();
      x = u < 0.1 ? 0.0f : static_cast<float>(u);
    }
    rows.push_back(std::move(v));
  }
  for (size_t d = 0; d + 1 < n / 10; ++d) rows[n - 1 - d] = rows[d * 7 % n];
  return rows;
}

constexpr size_t kTileSizes[] = {1, 3, 16, 64};

/// Asserts SearchBatch over every tile size == per-query KnnSearch,
/// bit for bit.
void ExpectBatchMatchesPerQuery(const VectorIndex& index,
                                const std::vector<Vec>& queries, size_t k,
                                const std::string& label) {
  std::vector<std::vector<Neighbor>> want(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    want[i] = KnnSearch(index, queries[i], k);
  }
  const QueryBlock block = QueryBlock::Pack(queries);
  for (const size_t tile : kTileSizes) {
    std::vector<std::vector<Neighbor>> got(queries.size());
    std::vector<SearchStats> stats(queries.size());
    for (size_t begin = 0; begin < queries.size(); begin += tile) {
      const size_t count = std::min(tile, queries.size() - begin);
      index.SearchBatch(block.Tile(begin, count), k, got.data() + begin,
                        stats.data() + begin);
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got[i].size(), want[i].size())
          << label << " tile=" << tile << " query=" << i;
      for (size_t j = 0; j < want[i].size(); ++j) {
        EXPECT_EQ(got[i][j].id, want[i][j].id)
            << label << " tile=" << tile << " query=" << i << " rank=" << j;
        // Bit-identity, not tolerance: the tiled kernels must only
        // reschedule the per-query arithmetic.
        EXPECT_EQ(got[i][j].distance, want[i][j].distance)
            << label << " tile=" << tile << " query=" << i << " rank=" << j;
      }
      if (k > 0 && index.size() > 0) {
        EXPECT_GT(stats[i].distance_evals, 0u) << label << " tile=" << tile;
      }
    }
  }
}

struct ScanCase {
  MetricKind metric;
  size_t shards;
  QuantizationKind quantization;
  std::string name;
};

std::vector<ScanCase> AllScanCases() {
  std::vector<ScanCase> cases;
  for (const MetricKind metric :
       {MetricKind::kL1, MetricKind::kL2, MetricKind::kLInf,
        MetricKind::kHistogramIntersection, MetricKind::kChiSquare,
        MetricKind::kHellinger, MetricKind::kCosine}) {
    for (const size_t shards : {1u, 3u}) {
      for (const QuantizationKind quantization :
           {QuantizationKind::kNone, QuantizationKind::kInt8,
            QuantizationKind::kPq}) {
        cases.push_back(
            {metric, shards, quantization,
             MetricKindName(metric) + "_s" + std::to_string(shards) + "_" +
                 QuantizationKindName(quantization)});
      }
    }
  }
  return cases;
}

class SearchBatchScanEquivalence
    : public ::testing::TestWithParam<ScanCase> {};

TEST_P(SearchBatchScanEquivalence, BitIdenticalToPerQueryAcrossTiles) {
  const ScanCase& param = GetParam();
  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = param.metric;
  config.shards = param.shards;
  config.quantization = param.quantization;
  config.pq_m = 6;
  config.rerank_factor = 3;
  auto index = MakeIndex(config);
  ASSERT_TRUE(index.ok()) << param.name;

  const std::vector<Vec> rows = RandomRows(300, 24, 42);
  ASSERT_TRUE(index.value()->Build(rows).ok());
  const std::vector<Vec> queries = RandomRows(70, 24, 4242);
  for (const size_t k : {1u, 10u}) {
    ExpectBatchMatchesPerQuery(*index.value(), queries, k,
                               param.name + "_k" + std::to_string(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SearchBatchScanEquivalence,
    ::testing::ValuesIn(AllScanCases()),
    [](const ::testing::TestParamInfo<ScanCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Tree indexes: VP-tree overrides SearchBatch with a shared traversal;
// KD/R/M-trees run through the base-class per-query adapter.

struct TreeCase {
  IndexKind index_kind;
  MetricKind metric;
  std::string name;
};

std::vector<TreeCase> AllTreeCases() {
  return {
      {IndexKind::kVpTree, MetricKind::kL1, "vp_l1"},
      {IndexKind::kVpTree, MetricKind::kL2, "vp_l2"},
      {IndexKind::kVpTree, MetricKind::kLInf, "vp_linf"},
      {IndexKind::kVpTree, MetricKind::kHellinger, "vp_hellinger"},
      {IndexKind::kKdTree, MetricKind::kL1, "kd_l1"},
      {IndexKind::kKdTree, MetricKind::kL2, "kd_l2"},
      {IndexKind::kRTree, MetricKind::kL2, "rtree_l2"},
      {IndexKind::kRTree, MetricKind::kLInf, "rtree_linf"},
      {IndexKind::kMTree, MetricKind::kL2, "mtree_l2"},
      {IndexKind::kMTree, MetricKind::kHellinger, "mtree_hellinger"},
  };
}

class SearchBatchTreeEquivalence
    : public ::testing::TestWithParam<TreeCase> {};

TEST_P(SearchBatchTreeEquivalence, BitIdenticalToPerQueryAcrossTiles) {
  const TreeCase& param = GetParam();
  for (const size_t shards : {1u, 3u}) {
    EngineConfig config;
    config.index_kind = param.index_kind;
    config.metric = param.metric;
    config.shards = shards;
    auto index = MakeIndex(config);
    ASSERT_TRUE(index.ok()) << param.name;

    const std::vector<Vec> rows = RandomRows(300, 16, 7);
    ASSERT_TRUE(index.value()->Build(rows).ok());
    const std::vector<Vec> queries = RandomRows(70, 16, 1007);
    ExpectBatchMatchesPerQuery(
        *index.value(), queries, 9,
        param.name + "_s" + std::to_string(shards));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTrees, SearchBatchTreeEquivalence,
    ::testing::ValuesIn(AllTreeCases()),
    [](const ::testing::TestParamInfo<TreeCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Degenerate shapes.

TEST(SearchBatchEdgeCases, KLargerThanStoreReturnsEverything) {
  LinearScanIndex index(MakeMetric(MetricKind::kL2));
  const std::vector<Vec> rows = RandomRows(20, 8, 3);
  ASSERT_TRUE(index.Build(rows).ok());
  const std::vector<Vec> queries = RandomRows(5, 8, 33);
  ExpectBatchMatchesPerQuery(index, queries, 50, "k_gt_n");
  const auto results = SearchBatch(index, queries, 50);
  for (const auto& r : results) EXPECT_EQ(r.size(), rows.size());
}

TEST(SearchBatchEdgeCases, KZeroYieldsEmptyResults) {
  for (const IndexKind kind :
       {IndexKind::kLinearScan, IndexKind::kVpTree, IndexKind::kKdTree}) {
    EngineConfig config;
    config.index_kind = kind;
    config.metric = MetricKind::kL2;
    auto index = MakeIndex(config);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(index.value()->Build(RandomRows(30, 8, 5)).ok());
    const auto results =
        SearchBatch(*index.value(), RandomRows(4, 8, 55), 0);
    ASSERT_EQ(results.size(), 4u);
    for (const auto& r : results) EXPECT_TRUE(r.empty());
  }
}

TEST(SearchBatchEdgeCases, EmptyQuerySetYieldsNoResults) {
  LinearScanIndex index(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(index.Build(RandomRows(30, 8, 5)).ok());
  EXPECT_TRUE(SearchBatch(index, {}, 5).empty());
}

TEST(SearchBatchEdgeCases, SingleRowStore) {
  for (const QuantizationKind quantization :
       {QuantizationKind::kNone, QuantizationKind::kInt8,
        QuantizationKind::kPq}) {
    EngineConfig config;
    config.index_kind = IndexKind::kLinearScan;
    config.metric = MetricKind::kL2;
    config.quantization = quantization;
    auto index = MakeIndex(config);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(index.value()->Build(RandomRows(1, 8, 9)).ok());
    const std::vector<Vec> queries = RandomRows(3, 8, 99);
    ExpectBatchMatchesPerQuery(*index.value(), queries, 4,
                               QuantizationKindName(quantization));
    const auto results = SearchBatch(*index.value(), queries, 4);
    for (const auto& r : results) {
      ASSERT_EQ(r.size(), 1u);
      EXPECT_EQ(r[0].id, 0u);
    }
  }
}

TEST(SearchBatchEdgeCases, EmptyIndex) {
  LinearScanIndex index(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(index.Build({}).ok());
  const auto results = SearchBatch(index, RandomRows(3, 8, 1), 5);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_TRUE(r.empty());
}

// ---------------------------------------------------------------------------
// int8 + cosine fast path (asymmetric dot + stored reconstructed row
// norms): with an over-fetch covering the whole store, the rerank is
// exhaustive and results must equal the exact float scan regardless of
// approximate-key rounding.

TEST(QuantizedCosineFastPath, ExhaustiveRerankMatchesExactScan) {
  const std::vector<Vec> rows = RandomRows(200, 24, 21);
  const std::vector<Vec> queries = RandomRows(10, 24, 2121);
  LinearScanIndex exact(MakeMetric(MetricKind::kCosine));
  ASSERT_TRUE(exact.Build(rows).ok());

  QuantizedStoreOptions options;
  options.backing = QuantBacking::kInt8;
  options.rerank_factor = rows.size();  // fetch covers the whole store
  QuantizedStore store(MakeMetric(MetricKind::kCosine), options);
  ASSERT_TRUE(store.Build(rows).ok());

  const size_t k = 10;
  for (const Vec& q : queries) {
    const auto want = KnnSearch(exact, q, k);
    const auto got = KnnSearch(store, q, k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j].id, want[j].id);
      EXPECT_DOUBLE_EQ(got[j].distance, want[j].distance);
    }
  }
  // And the batched form of the fast path stays bit-identical.
  ExpectBatchMatchesPerQuery(store, queries, k, "int8_cosine");
}

}  // namespace
}  // namespace cbix
