#include "image/filters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "image/convolve.h"
#include "util/random.h"

namespace cbix {
namespace {

ImageF RandomImage(int w, int h, int channels, uint64_t seed) {
  Rng rng(seed);
  ImageF img(w, h, channels);
  for (auto& v : img.data()) v = static_cast<float>(rng.NextDouble());
  return img;
}

TEST(ConvolveTest, IdentityKernel) {
  const ImageF img = RandomImage(8, 6, 1, 1);
  Kernel identity;
  identity.width = 3;
  identity.height = 3;
  identity.weights = {0, 0, 0, 0, 1, 0, 0, 0, 0};
  const ImageF out = Convolve(img, identity);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      EXPECT_NEAR(out.at(x, y), img.at(x, y), 1e-6);
    }
  }
}

TEST(ConvolveTest, SeparableMatchesDense) {
  const ImageF img = RandomImage(12, 9, 1, 2);
  const std::vector<float> row = {0.25f, 0.5f, 0.25f};
  const std::vector<float> col = {0.1f, 0.8f, 0.1f};
  // Dense outer-product kernel.
  Kernel dense;
  dense.width = 3;
  dense.height = 3;
  dense.weights.resize(9);
  for (int ky = 0; ky < 3; ++ky) {
    for (int kx = 0; kx < 3; ++kx) {
      dense.weights[ky * 3 + kx] = row[kx] * col[ky];
    }
  }
  const ImageF a = Convolve(img, dense);
  const ImageF b = ConvolveSeparable(img, row, col);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      EXPECT_NEAR(a.at(x, y), b.at(x, y), 1e-5);
    }
  }
}

TEST(ConvolveTest, ZeroBorderDarkensEdges) {
  ImageF img(5, 5, 1, 1.0f);
  Kernel box;
  box.width = 3;
  box.height = 3;
  box.weights.assign(9, 1.0f / 9.0f);
  const ImageF out = Convolve(img, box, BorderMode::kZero);
  EXPECT_NEAR(out.at(2, 2), 1.0f, 1e-6);          // interior untouched
  EXPECT_NEAR(out.at(0, 0), 4.0f / 9.0f, 1e-6);   // corner sees 4 ones
  EXPECT_NEAR(out.at(2, 0), 6.0f / 9.0f, 1e-6);   // edge sees 6 ones
}

TEST(ConvolveTest, ReplicateBorderKeepsConstantImage) {
  ImageF img(5, 5, 1, 0.7f);
  Kernel box;
  box.width = 3;
  box.height = 3;
  box.weights.assign(9, 1.0f / 9.0f);
  const ImageF out = Convolve(img, box, BorderMode::kReplicate);
  for (float v : out.data()) EXPECT_NEAR(v, 0.7f, 1e-6);
}

TEST(ResolveBorderTest, ReflectPattern) {
  // size=4: ... 2 1 | 0 1 2 3 | 2 1 0 ...
  EXPECT_EQ(ResolveBorder(-1, 4, BorderMode::kReflect), 1);
  EXPECT_EQ(ResolveBorder(-2, 4, BorderMode::kReflect), 2);
  EXPECT_EQ(ResolveBorder(4, 4, BorderMode::kReflect), 2);
  EXPECT_EQ(ResolveBorder(5, 4, BorderMode::kReflect), 1);
  EXPECT_EQ(ResolveBorder(2, 4, BorderMode::kReflect), 2);
}

TEST(ResolveBorderTest, SizeOneAlwaysZero) {
  EXPECT_EQ(ResolveBorder(-3, 1, BorderMode::kReflect), 0);
  EXPECT_EQ(ResolveBorder(9, 1, BorderMode::kReplicate), 0);
}

TEST(GaussianKernelTest, NormalizedAndSymmetric) {
  for (float sigma : {0.5f, 1.0f, 2.5f}) {
    const auto k = GaussianKernel1d(sigma);
    EXPECT_EQ(k.size() % 2, 1u);
    float sum = std::accumulate(k.begin(), k.end(), 0.0f);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
    for (size_t i = 0; i < k.size() / 2; ++i) {
      EXPECT_NEAR(k[i], k[k.size() - 1 - i], 1e-6);
    }
    // Peak at the centre.
    EXPECT_GE(k[k.size() / 2], k[0]);
  }
}

TEST(GaussianBlurTest, PreservesConstantImage) {
  ImageF img(9, 9, 3, 0.42f);
  const ImageF out = GaussianBlur(img, 1.5f);
  for (float v : out.data()) EXPECT_NEAR(v, 0.42f, 1e-5);
}

TEST(GaussianBlurTest, ReducesVariance) {
  const ImageF img = RandomImage(32, 32, 1, 3);
  const ImageF out = GaussianBlur(img, 2.0f);
  auto variance = [](const ImageF& im) {
    double mean = 0;
    for (float v : im.data()) mean += v;
    mean /= im.data().size();
    double var = 0;
    for (float v : im.data()) var += (v - mean) * (v - mean);
    return var / im.data().size();
  };
  EXPECT_LT(variance(out), variance(img) * 0.5);
}

TEST(GaussianBlurTest, SigmaZeroIsIdentity) {
  const ImageF img = RandomImage(6, 6, 1, 4);
  EXPECT_EQ(GaussianBlur(img, 0.0f), img);
}

TEST(SobelTest, HorizontalRampHasConstantGradientX) {
  // f(x, y) = x / 8 -> df/dx constant; Sobel x response = 8 * step.
  ImageF img(8, 8, 1);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) img.at(x, y) = x / 8.0f;
  }
  const ImageF gx = SobelX(img);
  const ImageF gy = SobelY(img);
  for (int y = 1; y < 7; ++y) {
    for (int x = 1; x < 7; ++x) {
      EXPECT_NEAR(gx.at(x, y), 8.0f * (1.0f / 8.0f), 1e-5);
      EXPECT_NEAR(gy.at(x, y), 0.0f, 1e-5);
    }
  }
}

TEST(SobelTest, GradientsOrientationOnVerticalEdge) {
  // Left half dark, right half bright: gradient points in +x, angle ~0.
  ImageF img(10, 10, 1);
  for (int y = 0; y < 10; ++y) {
    for (int x = 5; x < 10; ++x) img.at(x, y) = 1.0f;
  }
  const GradientField field = SobelGradients(img);
  // At the edge column the magnitude peaks and orientation is ~0 rad.
  int peak_x = 0;
  float peak = -1;
  for (int x = 1; x < 9; ++x) {
    if (field.magnitude.at(x, 5) > peak) {
      peak = field.magnitude.at(x, 5);
      peak_x = x;
    }
  }
  EXPECT_TRUE(peak_x == 4 || peak_x == 5);
  EXPECT_NEAR(field.orientation.at(peak_x, 5), 0.0f, 1e-4);
}

TEST(LaplacianTest, ZeroOnLinearRamp) {
  ImageF img(8, 8, 1);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) img.at(x, y) = 0.1f * x + 0.2f * y;
  }
  const ImageF lap = Laplacian(img);
  for (int y = 1; y < 7; ++y) {
    for (int x = 1; x < 7; ++x) EXPECT_NEAR(lap.at(x, y), 0.0f, 1e-5);
  }
}

TEST(OtsuTest, SeparatesBimodalImage) {
  ImageF img(20, 20, 1);
  for (int y = 0; y < 20; ++y) {
    for (int x = 0; x < 20; ++x) {
      img.at(x, y) = (x < 10) ? 0.2f : 0.8f;
    }
  }
  const float t = OtsuThreshold(img);
  EXPECT_GT(t, 0.2f);
  EXPECT_LT(t, 0.8f);
}

TEST(OtsuTest, AllZeroImageReturnsZero) {
  ImageF img(4, 4, 1, 0.0f);
  EXPECT_EQ(OtsuThreshold(img), 0.0f);
}

TEST(BoxBlurTest, ConstantPreserved) {
  ImageF img(7, 7, 1, 0.9f);
  const ImageF out = BoxBlur(img, 5);
  for (float v : out.data()) EXPECT_NEAR(v, 0.9f, 1e-5);
}

}  // namespace
}  // namespace cbix
