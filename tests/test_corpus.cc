#include "corpus/corpus.h"

#include <gtest/gtest.h>

#include "corpus/vector_workload.h"
#include "distance/minkowski.h"

namespace cbix {
namespace {

TEST(CorpusTest, GeneratesRequestedCount) {
  CorpusSpec spec;
  spec.num_classes = 5;
  spec.images_per_class = 4;
  spec.width = 32;
  spec.height = 32;
  const auto corpus = CorpusGenerator(spec).Generate();
  ASSERT_EQ(corpus.size(), 20u);
  for (const auto& item : corpus) {
    EXPECT_EQ(item.image.width(), 32);
    EXPECT_EQ(item.image.height(), 32);
    EXPECT_EQ(item.image.channels(), 3);
    EXPECT_GE(item.class_id, 0);
    EXPECT_LT(item.class_id, 5);
  }
}

TEST(CorpusTest, DeterministicForSameSpec) {
  CorpusSpec spec;
  spec.num_classes = 3;
  spec.images_per_class = 2;
  spec.width = 24;
  spec.height = 24;
  const auto a = CorpusGenerator(spec).Generate();
  const auto b = CorpusGenerator(spec).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image, b[i].image) << i;
    EXPECT_EQ(a[i].name, b[i].name);
  }
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  CorpusSpec a_spec;
  a_spec.num_classes = 2;
  a_spec.images_per_class = 1;
  a_spec.width = a_spec.height = 24;
  CorpusSpec b_spec = a_spec;
  b_spec.seed = a_spec.seed + 1;
  const auto a = CorpusGenerator(a_spec).Generate();
  const auto b = CorpusGenerator(b_spec).Generate();
  EXPECT_NE(a[0].image, b[0].image);
}

TEST(CorpusTest, InstancesOfClassDifferButShareArchetype) {
  CorpusSpec spec;
  spec.num_classes = 7;
  spec.images_per_class = 3;
  spec.width = spec.height = 32;
  CorpusGenerator gen(spec);
  for (int c = 0; c < 7; ++c) {
    const auto i0 = gen.MakeInstance(c, 0);
    const auto i1 = gen.MakeInstance(c, 1);
    EXPECT_NE(i0.image, i1.image) << "class " << c;
    EXPECT_EQ(i0.class_id, i1.class_id);
  }
}

TEST(CorpusTest, ArchetypesRoundRobin) {
  CorpusSpec spec;
  spec.num_classes = 14;
  CorpusGenerator gen(spec);
  EXPECT_EQ(gen.ClassArchetype(0), gen.ClassArchetype(7));
  EXPECT_NE(gen.ClassArchetype(0), gen.ClassArchetype(1));
}

TEST(CorpusTest, NamesEncodeClassAndInstance) {
  CorpusSpec spec;
  spec.num_classes = 2;
  spec.images_per_class = 2;
  spec.width = spec.height = 16;
  const auto item = CorpusGenerator(spec).MakeInstance(1, 0);
  EXPECT_NE(item.name.find("class1"), std::string::npos);
  EXPECT_NE(item.name.find("inst0"), std::string::npos);
}

TEST(DistortionTest, IdentityByDefault) {
  CorpusSpec spec;
  spec.num_classes = 1;
  spec.images_per_class = 1;
  spec.width = spec.height = 32;
  const auto item = CorpusGenerator(spec).MakeInstance(0, 0);
  const ImageU8 out = ApplyDistortion(item.image, Distortion{});
  EXPECT_EQ(out, item.image);
}

TEST(DistortionTest, NoiseChangesImageDeterministically) {
  CorpusSpec spec;
  spec.num_classes = 1;
  spec.images_per_class = 1;
  spec.width = spec.height = 32;
  const auto item = CorpusGenerator(spec).MakeInstance(0, 0);
  Distortion d;
  d.gaussian_noise_sigma = 0.05f;
  const ImageU8 a = ApplyDistortion(item.image, d, /*seed=*/5);
  const ImageU8 b = ApplyDistortion(item.image, d, /*seed=*/5);
  const ImageU8 c = ApplyDistortion(item.image, d, /*seed=*/6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, item.image);
}

TEST(DistortionTest, CropPreservesSize) {
  CorpusSpec spec;
  spec.num_classes = 1;
  spec.images_per_class = 1;
  spec.width = spec.height = 48;
  const auto item = CorpusGenerator(spec).MakeInstance(0, 0);
  Distortion d;
  d.crop_fraction = 0.1f;
  const ImageU8 out = ApplyDistortion(item.image, d);
  EXPECT_EQ(out.width(), 48);
  EXPECT_EQ(out.height(), 48);
  EXPECT_NE(out, item.image);
}

TEST(DistortionTest, SeverityZeroIsIdentity) {
  Rng rng(3);
  const Distortion d = RandomDistortion(&rng, 0.0f);
  EXPECT_EQ(d.gaussian_noise_sigma, 0.0f);
  EXPECT_EQ(d.blur_sigma, 0.0f);
  EXPECT_EQ(d.brightness_shift, 0.0f);
  EXPECT_EQ(d.contrast_scale, 1.0f);
  EXPECT_FALSE(d.flip_horizontal);
}

TEST(DistortionTest, SeverityBoundsRespected) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Distortion d = RandomDistortion(&rng, 1.0f);
    EXPECT_LE(d.gaussian_noise_sigma, 0.08f);
    EXPECT_LE(d.blur_sigma, 2.5f);
    EXPECT_LE(std::abs(d.brightness_shift), 0.15f);
    EXPECT_GE(d.contrast_scale, 0.7f);
    EXPECT_LE(d.contrast_scale, 1.3f);
    EXPECT_LE(d.crop_fraction, 0.1f);
  }
}

// --------------------------------------------------------------------------
// Vector workloads

TEST(VectorWorkloadTest, ShapesAndDeterminism) {
  VectorWorkloadSpec spec;
  spec.count = 100;
  spec.dim = 8;
  const auto a = GenerateVectors(spec);
  const auto b = GenerateVectors(spec);
  ASSERT_EQ(a.size(), 100u);
  EXPECT_EQ(a[0].size(), 8u);
  EXPECT_EQ(a, b);
}

TEST(VectorWorkloadTest, UniformStaysInUnitCube) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kUniform;
  spec.count = 500;
  spec.dim = 4;
  for (const auto& v : GenerateVectors(spec)) {
    for (float x : v) {
      EXPECT_GE(x, 0.0f);
      EXPECT_LT(x, 1.0f);
    }
  }
}

TEST(VectorWorkloadTest, ClusteredIsTighterThanUniform) {
  // Mean nearest-neighbour distance is much smaller for clustered data.
  VectorWorkloadSpec u;
  u.distribution = VectorDistribution::kUniform;
  u.count = 400;
  u.dim = 8;
  VectorWorkloadSpec c = u;
  c.distribution = VectorDistribution::kClustered;
  c.num_clusters = 8;
  c.cluster_sigma = 0.02;

  L2Distance l2;
  auto mean_nn = [&l2](const std::vector<Vec>& data) {
    double total = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      double best = 1e30;
      for (size_t j = 0; j < data.size(); ++j) {
        if (i == j) continue;
        best = std::min(best, l2.Distance(data[i], data[j]));
      }
      total += best;
    }
    return total / static_cast<double>(data.size());
  };
  EXPECT_LT(mean_nn(GenerateVectors(c)), mean_nn(GenerateVectors(u)) * 0.8);
}

TEST(VectorWorkloadTest, CorrelatedHasLowEffectiveSpread) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kCorrelated;
  spec.count = 300;
  spec.dim = 16;
  spec.intrinsic_dim = 2;
  const auto data = GenerateVectors(spec);
  ASSERT_EQ(data.size(), 300u);
  // Coordinates hover around 0.5 (mean structure), unlike uniform.
  double mean = 0;
  for (const auto& v : data) {
    for (float x : v) mean += x;
  }
  mean /= 300.0 * 16.0;
  EXPECT_NEAR(mean, 0.5, 0.05);
}

TEST(VectorWorkloadTest, PerturbedQueriesNearData) {
  VectorWorkloadSpec spec;
  spec.count = 50;
  spec.dim = 6;
  const auto data = GenerateVectors(spec);
  const auto queries =
      GenerateQueries(spec, data, QueryMode::kPerturbedData, 20, 0.01);
  ASSERT_EQ(queries.size(), 20u);
  L2Distance l2;
  for (const auto& q : queries) {
    double best = 1e30;
    for (const auto& v : data) best = std::min(best, l2.Distance(q, v));
    EXPECT_LT(best, 0.2);
  }
}

TEST(VectorWorkloadTest, IndependentQueriesMatchDistribution) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kUniform;
  spec.count = 10;
  spec.dim = 3;
  const auto data = GenerateVectors(spec);
  const auto queries =
      GenerateQueries(spec, data, QueryMode::kIndependent, 25);
  EXPECT_EQ(queries.size(), 25u);
  for (const auto& q : queries) EXPECT_EQ(q.size(), 3u);
}

}  // namespace
}  // namespace cbix
