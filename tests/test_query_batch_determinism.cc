// Regression guard for the batch query fan-out paths: the same corpus
// and query batch must produce byte-identical results (ids, names,
// labels, bit-equal distances, equal per-query stats) regardless of the
// worker-thread count, across repeated runs, and for both the flat and
// the sharded engine configurations. Worker scheduling may reorder
// execution; it must never reorder or perturb answers.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/engine.h"
#include "corpus/corpus.h"
#include "corpus/vector_workload.h"

namespace cbix {
namespace {

using Matches = std::vector<std::vector<CbirEngine::Match>>;

/// Bitwise distance comparison: determinism means the same double, not
/// merely a close one.
bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectIdenticalBatches(const Matches& got, const Matches& want,
                            const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t q = 0; q < got.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << context << " query=" << q;
    for (size_t i = 0; i < got[q].size(); ++i) {
      EXPECT_EQ(got[q][i].id, want[q][i].id) << context << " query=" << q;
      EXPECT_EQ(got[q][i].name, want[q][i].name) << context << " query=" << q;
      EXPECT_EQ(got[q][i].label, want[q][i].label)
          << context << " query=" << q;
      EXPECT_TRUE(BitEqual(got[q][i].distance, want[q][i].distance))
          << context << " query=" << q << " rank=" << i
          << " got=" << got[q][i].distance << " want=" << want[q][i].distance;
    }
  }
}

void ExpectIdenticalStats(const std::vector<SearchStats>& got,
                          const std::vector<SearchStats>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t q = 0; q < got.size(); ++q) {
    EXPECT_EQ(got[q].distance_evals, want[q].distance_evals)
        << context << " query=" << q;
    EXPECT_EQ(got[q].nodes_visited, want[q].nodes_visited)
        << context << " query=" << q;
    EXPECT_EQ(got[q].leaves_visited, want[q].leaves_visited)
        << context << " query=" << q;
  }
}

class BatchDeterminism : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchDeterminism, VectorBatchIsThreadCountInvariant) {
  const size_t shards = GetParam();

  VectorWorkloadSpec spec;
  spec.count = 400;
  spec.dim = 16;
  spec.seed = 2026;
  const std::vector<Vec> data = GenerateVectors(spec);
  const std::vector<Vec> queries =
      GenerateQueries(spec, data, QueryMode::kPerturbedData, 12, 0.04, 55);

  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = MetricKind::kL2;
  config.shards = shards;
  CbirEngine engine(FeatureExtractor(), config);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(
        engine.AddFeatureVector(data[i], "v" + std::to_string(i), i % 5)
            .ok());
  }
  ASSERT_TRUE(engine.BuildIndex().ok());

  // Reference: the sequential single-query path.
  Matches reference(queries.size());
  std::vector<SearchStats> reference_stats(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    auto result = engine.QueryKnnByVector(queries[q], 9, &reference_stats[q]);
    ASSERT_TRUE(result.ok());
    reference[q] = std::move(result.value());
  }

  for (size_t threads : {1u, 2u, 8u}) {
    for (int run = 0; run < 3; ++run) {
      std::vector<SearchStats> stats;
      auto result = engine.QueryKnnBatchByVectors(queries, 9, threads, &stats);
      ASSERT_TRUE(result.ok());
      const std::string context = "shards=" + std::to_string(shards) +
                                  " threads=" + std::to_string(threads) +
                                  " run=" + std::to_string(run);
      ExpectIdenticalBatches(result.value(), reference, context);
      ExpectIdenticalStats(stats, reference_stats, context);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FlatAndSharded, BatchDeterminism,
                         ::testing::Values(1u, 3u),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

TEST(BatchDeterminismTest, ImageBatchIsThreadCountInvariant) {
  CorpusSpec spec;
  spec.num_classes = 3;
  spec.images_per_class = 4;
  spec.width = 48;
  spec.height = 48;
  const std::vector<LabeledImage> corpus = CorpusGenerator(spec).Generate();

  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = MetricKind::kL1;
  config.shards = 2;
  CbirEngine engine(MakeDefaultExtractor(48), config);
  for (const LabeledImage& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }

  const std::vector<ImageU8> batch = {corpus[0].image, corpus[5].image,
                                      corpus[11].image};
  std::vector<SearchStats> reference_stats;
  auto reference = engine.QueryKnnBatch(batch, 4, 1, &reference_stats);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference.value().size(), batch.size());
  // A database image queried against itself must come back on top.
  EXPECT_EQ(reference.value()[0][0].id, 0u);
  EXPECT_TRUE(BitEqual(reference.value()[0][0].distance, 0.0));

  for (size_t threads : {2u, 8u}) {
    std::vector<SearchStats> stats;
    auto result = engine.QueryKnnBatch(batch, 4, threads, &stats);
    ASSERT_TRUE(result.ok());
    ExpectIdenticalBatches(result.value(), reference.value(),
                           "image_batch threads=" + std::to_string(threads));
    ExpectIdenticalStats(stats, reference_stats, "image_batch");
  }
}

TEST(BatchDeterminismTest, EmptyStoreAndEmptyBatch) {
  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = MetricKind::kL2;
  config.shards = 3;
  CbirEngine engine(FeatureExtractor(), config);

  std::vector<SearchStats> stats;
  auto result = engine.QueryKnnBatchByVectors({{1.f, 2.f}}, 5, 4, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_TRUE(result.value()[0].empty());

  ASSERT_TRUE(engine.AddFeatureVector({1.f, 2.f}, "v0").ok());
  auto empty_batch = engine.QueryKnnBatchByVectors({}, 5, 4, &stats);
  ASSERT_TRUE(empty_batch.ok());
  EXPECT_TRUE(empty_batch.value().empty());
  EXPECT_TRUE(stats.empty());
}

}  // namespace
}  // namespace cbix
