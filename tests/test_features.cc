#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "corpus/corpus.h"
#include "distance/minkowski.h"
#include "features/color_histogram.h"
#include "features/correlogram.h"
#include "features/descriptor.h"
#include "features/edge_shape_features.h"
#include "features/extractor.h"
#include "features/texture_features.h"
#include "image/draw.h"
#include "image/resize.h"

namespace cbix {
namespace {

ImageF SolidImage(int size, const ColorF& color) {
  ImageF img(size, size, 3);
  FillImage(&img, color);
  return img;
}

float VecSum(const Vec& v) {
  return std::accumulate(v.begin(), v.end(), 0.0f);
}

// --------------------------------------------------------------------------
// Normalization

TEST(NormalizationTest, L1MakesUnitMass) {
  Vec v{1, 3, 4};
  NormalizeVector(&v, Normalization::kL1);
  EXPECT_NEAR(VecSum(v), 1.0f, 1e-6);
  EXPECT_NEAR(v[2], 0.5f, 1e-6);
}

TEST(NormalizationTest, L2MakesUnitNorm) {
  Vec v{3, 4};
  NormalizeVector(&v, Normalization::kL2);
  EXPECT_NEAR(v[0], 0.6f, 1e-6);
  EXPECT_NEAR(v[1], 0.8f, 1e-6);
}

TEST(NormalizationTest, MinMaxMapsToUnitInterval) {
  Vec v{-2, 0, 6};
  NormalizeVector(&v, Normalization::kMinMax);
  EXPECT_NEAR(v[0], 0.0f, 1e-6);
  EXPECT_NEAR(v[1], 0.25f, 1e-6);
  EXPECT_NEAR(v[2], 1.0f, 1e-6);
}

TEST(NormalizationTest, DegenerateInputsUnchanged) {
  Vec zeros{0, 0, 0};
  Vec copy = zeros;
  NormalizeVector(&zeros, Normalization::kL1);
  EXPECT_EQ(zeros, copy);
  Vec constant{2, 2};
  NormalizeVector(&constant, Normalization::kMinMax);
  EXPECT_EQ(constant, (Vec{2, 2}));
}

// --------------------------------------------------------------------------
// Colour histograms

TEST(ColorHistogramTest, UnitMassAndCorrectDim) {
  auto quantizer = std::make_shared<HsvQuantizer>(18, 3, 3);
  ColorHistogramDescriptor desc(quantizer);
  EXPECT_EQ(desc.dim(), 162u);
  const Vec h = desc.Extract(SolidImage(32, {0.8f, 0.1f, 0.1f}));
  EXPECT_EQ(h.size(), 162u);
  EXPECT_NEAR(VecSum(h), 1.0f, 1e-5);
}

TEST(ColorHistogramTest, SolidColorIsOneBin) {
  auto quantizer = std::make_shared<RgbUniformQuantizer>(4);
  ColorHistogramDescriptor desc(quantizer);
  const Vec h = desc.Extract(SolidImage(16, {0.9f, 0.1f, 0.1f}));
  int nonzero = 0;
  for (float v : h) nonzero += v > 0;
  EXPECT_EQ(nonzero, 1);
}

TEST(ColorHistogramTest, InvariantToFlips) {
  CorpusSpec spec;
  spec.num_classes = 1;
  spec.images_per_class = 1;
  spec.width = spec.height = 32;
  const auto item = CorpusGenerator(spec).MakeInstance(0, 0);
  const ImageF rgb = ToFloat(item.image);
  auto quantizer = std::make_shared<HsvQuantizer>(18, 3, 3);
  ColorHistogramDescriptor desc(quantizer);
  const Vec a = desc.Extract(rgb);
  const Vec b = desc.Extract(FlipHorizontal(rgb));
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(ColorHistogramTest, DistinguishesColors) {
  auto quantizer = std::make_shared<HsvQuantizer>(18, 3, 3);
  ColorHistogramDescriptor desc(quantizer);
  const Vec red = desc.Extract(SolidImage(16, {0.9f, 0.1f, 0.1f}));
  const Vec blue = desc.Extract(SolidImage(16, {0.1f, 0.1f, 0.9f}));
  EXPECT_GT(L1Distance().Distance(red, blue), 1.0);
}

TEST(CumulativeHistogramTest, MonotoneAndEndsAtOne) {
  auto quantizer = std::make_shared<RgbUniformQuantizer>(4);
  CumulativeHistogramDescriptor desc(quantizer);
  CorpusSpec spec;
  spec.num_classes = 1;
  spec.images_per_class = 1;
  spec.width = spec.height = 32;
  const auto item = CorpusGenerator(spec).MakeInstance(0, 0);
  const Vec h = desc.Extract(ToFloat(item.image));
  for (size_t i = 1; i < h.size(); ++i) EXPECT_GE(h[i], h[i - 1] - 1e-6);
  EXPECT_NEAR(h.back(), 1.0f, 1e-5);
}

TEST(GridHistogramTest, SensitiveToLayoutWhereGlobalIsNot) {
  auto quantizer = std::make_shared<RgbUniformQuantizer>(4);
  // Half-red/half-blue, left-right vs right-left.
  ImageF a(32, 32, 3), b(32, 32, 3);
  FillRect(&a, 0, 0, 16, 32, {1, 0, 0});
  FillRect(&a, 16, 0, 32, 32, {0, 0, 1});
  FillRect(&b, 0, 0, 16, 32, {0, 0, 1});
  FillRect(&b, 16, 0, 32, 32, {1, 0, 0});

  ColorHistogramDescriptor global(quantizer);
  GridHistogramDescriptor grid(quantizer, 2, 2);
  L1Distance l1;
  EXPECT_NEAR(l1.Distance(global.Extract(a), global.Extract(b)), 0.0, 1e-5);
  EXPECT_GT(l1.Distance(grid.Extract(a), grid.Extract(b)), 0.5);
}

TEST(GridHistogramTest, DimIsCellsTimesBins) {
  auto quantizer = std::make_shared<RgbUniformQuantizer>(3);
  GridHistogramDescriptor desc(quantizer, 3, 2);
  EXPECT_EQ(desc.dim(), 27u * 6u);
  const Vec v = desc.Extract(SolidImage(30, {0.5f, 0.5f, 0.5f}));
  EXPECT_EQ(v.size(), desc.dim());
  EXPECT_NEAR(VecSum(v), 1.0f, 1e-5);  // cells scaled by 1/cell_count
}

TEST(ColorMomentsTest, SolidImageMomentsAreExact) {
  ColorMomentsDescriptor desc;
  const Vec m = desc.Extract(SolidImage(16, {0.25f, 0.5f, 0.75f}));
  ASSERT_EQ(m.size(), 9u);
  EXPECT_NEAR(m[0], 0.25f, 1e-3);  // mean R
  EXPECT_NEAR(m[1], 0.0f, 1e-4);   // std R
  EXPECT_NEAR(m[3], 0.5f, 1e-3);   // mean G
  EXPECT_NEAR(m[6], 0.75f, 1e-3);  // mean B
}

// --------------------------------------------------------------------------
// Correlogram

TEST(CorrelogramTest, SolidImageFullyCorrelated) {
  auto quantizer = std::make_shared<RgbUniformQuantizer>(2);
  AutoCorrelogramDescriptor desc(quantizer, {1, 3});
  EXPECT_EQ(desc.dim(), 16u);
  const Vec v = desc.Extract(SolidImage(24, {0.9f, 0.9f, 0.9f}));
  // The occupied bin has probability 1 at every distance; others 0.
  float max_val = 0;
  int ones = 0;
  for (float x : v) {
    max_val = std::max(max_val, x);
    ones += x > 0.99f;
  }
  EXPECT_NEAR(max_val, 1.0f, 1e-6);
  EXPECT_EQ(ones, 2);  // one bin per distance
}

TEST(CorrelogramTest, FineCheckerDecorrelatedAtDistanceOne) {
  // Period-1 checker in black/white: at L∞ distance 1 the 8-ring around
  // any pixel holds 4 same and 4 opposite pixels -> autocorrelation ~0.5
  // for each of the two colours (less at borders).
  ImageF img(32, 32, 3);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      const float v = ((x + y) % 2 == 0) ? 0.9f : 0.1f;
      PutPixel(&img, x, y, {v, v, v});
    }
  }
  auto quantizer = std::make_shared<RgbUniformQuantizer>(2);
  AutoCorrelogramDescriptor desc(quantizer, {1});
  const Vec v = desc.Extract(img);
  for (float x : v) {
    if (x > 0) {
      EXPECT_NEAR(x, 0.5f, 0.08f);
    }
  }
}

TEST(CorrelogramTest, DiscriminatesLayoutWithSameHistogram) {
  // Same 50/50 colour mass; blocked vs fine checker layouts.
  ImageF blocked(32, 32, 3), checker(32, 32, 3);
  FillRect(&blocked, 0, 0, 16, 32, {0.9f, 0.1f, 0.1f});
  FillRect(&blocked, 16, 0, 32, 32, {0.1f, 0.1f, 0.9f});
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      PutPixel(&checker, x, y,
               ((x + y) % 2 == 0) ? ColorF{0.9f, 0.1f, 0.1f}
                                  : ColorF{0.1f, 0.1f, 0.9f});
    }
  }
  auto quantizer = std::make_shared<RgbUniformQuantizer>(2);
  AutoCorrelogramDescriptor desc(quantizer, {1});
  const double d = L1Distance().Distance(desc.Extract(blocked),
                                         desc.Extract(checker));
  EXPECT_GT(d, 0.5);
}

// --------------------------------------------------------------------------
// Texture descriptors

TEST(GlcmDescriptorTest, DimAndDiscrimination) {
  GlcmDescriptor desc(16, {1, 2});
  EXPECT_EQ(desc.dim(), 10u);
  // Smooth vs striped texture must differ markedly in contrast features.
  const ImageF smooth = SolidImage(32, {0.5f, 0.5f, 0.5f});
  ImageF stripes(32, 32, 3);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      const float v = (x % 2 == 0) ? 0.9f : 0.1f;
      PutPixel(&stripes, x, y, {v, v, v});
    }
  }
  const Vec a = desc.Extract(smooth);
  const Vec b = desc.Extract(stripes);
  EXPECT_GT(L2Distance().Distance(a, b), 1.0);
}

TEST(WaveletDescriptorTest, DimFormula) {
  EXPECT_EQ(WaveletSignatureDescriptor(3).dim(), 11u);
  EXPECT_EQ(WaveletSignatureDescriptor(1).dim(), 5u);
}

TEST(WaveletDescriptorTest, SolidImageHasOnlyApproxEnergy) {
  WaveletSignatureDescriptor desc(3);
  const Vec v = desc.Extract(SolidImage(64, {0.5f, 0.5f, 0.5f}));
  ASSERT_EQ(v.size(), 11u);
  for (int i = 0; i < 9; ++i) EXPECT_NEAR(v[i], 0.0f, 1e-4) << i;
  EXPECT_GT(v[9], 0.5f);             // LL energy
  EXPECT_NEAR(v[10], 4.0f, 0.1f);    // LL mean of 0.5 scaled by 2^3
}

TEST(WaveletDescriptorTest, OrientationSelective) {
  ImageF vertical(64, 64, 3), horizontal(64, 64, 3);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const float v = (x % 2 == 0) ? 0.9f : 0.1f;
      const float h = (y % 2 == 0) ? 0.9f : 0.1f;
      PutPixel(&vertical, x, y, {v, v, v});
      PutPixel(&horizontal, x, y, {h, h, h});
    }
  }
  WaveletSignatureDescriptor desc(1);
  const Vec sv = desc.Extract(vertical);    // [lh, hl, hh, ll_e, ll_mean]
  const Vec sh = desc.Extract(horizontal);
  EXPECT_GT(sv[1], sv[0] + 0.1f);  // vertical stripes -> HL dominates
  EXPECT_GT(sh[0], sh[1] + 0.1f);  // horizontal stripes -> LH dominates
}

TEST(WaveletDescriptorTest, HandlesNonPowerOfTwoByCropping) {
  WaveletSignatureDescriptor desc(2);
  const Vec v = desc.Extract(SolidImage(50, {0.3f, 0.3f, 0.3f}));
  EXPECT_EQ(v.size(), desc.dim());
}

// --------------------------------------------------------------------------
// Edge / shape descriptors

TEST(EdgeHistogramTest, VerticalEdgesConcentrateInOneBin) {
  ImageF img(64, 64, 3);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const float v = (x / 8) % 2 == 0 ? 0.1f : 0.9f;
      PutPixel(&img, x, y, {v, v, v});
    }
  }
  EdgeOrientationHistogramDescriptor desc(18);
  const Vec h = desc.Extract(img);
  ASSERT_EQ(h.size(), 19u);
  // Vertical edges -> gradient along x -> folded orientation ~0 -> bin 0
  // (or the last bin due to wraparound).
  const float concentrated = h[0] + h[17];
  EXPECT_GT(concentrated, 0.8f);
  EXPECT_GT(h[18], 0.0f);  // non-zero edge density
}

TEST(EdgeHistogramTest, SolidImageHasZeroDensity) {
  EdgeOrientationHistogramDescriptor desc;
  const Vec h = desc.Extract(SolidImage(32, {0.4f, 0.4f, 0.4f}));
  EXPECT_NEAR(h.back(), 0.0f, 1e-5);
}

TEST(EdgeHistogramTest, RotationShiftsBins) {
  ImageF vertical(64, 64, 3), horizontal(64, 64, 3);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const float v = (x / 8) % 2 == 0 ? 0.1f : 0.9f;
      const float h = (y / 8) % 2 == 0 ? 0.1f : 0.9f;
      PutPixel(&vertical, x, y, {v, v, v});
      PutPixel(&horizontal, x, y, {h, h, h});
    }
  }
  EdgeOrientationHistogramDescriptor desc(18);
  const Vec hv = desc.Extract(vertical);
  const Vec hh = desc.Extract(horizontal);
  // Horizontal stripes put mass near pi/2 (bin 9), vertical near 0.
  EXPECT_GT(hh[9] + hh[8], 0.6f);
  EXPECT_LT(hv[9], 0.2f);
}

TEST(ShapeMomentsTest, DimAndDiscrimination) {
  ShapeMomentsDescriptor desc;
  EXPECT_EQ(desc.dim(), 10u);
  ImageF circle(64, 64, 3), bar(64, 64, 3);
  FillCircle(&circle, 32, 32, 14, {1, 1, 1});
  FillRect(&bar, 4, 28, 60, 36, {1, 1, 1});
  const Vec a = desc.Extract(circle);
  const Vec b = desc.Extract(bar);
  // Eccentricity slot (index 7) must separate the shapes.
  EXPECT_LT(a[7], 0.5f);
  EXPECT_GT(b[7], 0.8f);
}

TEST(SdtHistogramTest, ClutteredVsSparseScenes) {
  // Cluttered: many edges -> SDT mass near 0. Sparse: one small shape ->
  // long tail.
  ImageF cluttered(64, 64, 3), sparse(64, 64, 3);
  for (int i = 0; i < 20; ++i) {
    FillCircle(&cluttered, (i * 13) % 64, (i * 29) % 64, 4.0f,
               {(i % 2) ? 0.9f : 0.1f, 0.5f, 0.5f});
  }
  FillCircle(&sparse, 12, 12, 4, {1, 1, 1});
  SdtHistogramDescriptor desc(16, 32.0f);
  const Vec hc = desc.Extract(cluttered);
  const Vec hs = desc.Extract(sparse);
  ASSERT_EQ(hc.size(), 16u);
  EXPECT_GT(hc[0] + hc[1], hs[0] + hs[1]);
  // Sparse scene has more mass in far bins.
  float far_c = 0, far_s = 0;
  for (int i = 8; i < 16; ++i) {
    far_c += hc[i];
    far_s += hs[i];
  }
  EXPECT_GT(far_s, far_c);
}

// --------------------------------------------------------------------------
// Extractor composition & registry

TEST(ExtractorTest, DimIsSumOfBlocks) {
  FeatureExtractor ex(64, 64);
  ex.Add(std::make_shared<ColorMomentsDescriptor>(), 1.0f)
      .Add(std::make_shared<WaveletSignatureDescriptor>(2), 1.0f);
  EXPECT_EQ(ex.dim(), 9u + 8u);
  EXPECT_EQ(ex.block_count(), 2u);
}

TEST(ExtractorTest, OutputSizeMatchesDim) {
  const FeatureExtractor ex = MakeDefaultExtractor(64);
  CorpusSpec spec;
  spec.num_classes = 1;
  spec.images_per_class = 1;
  spec.width = spec.height = 48;
  const auto item = CorpusGenerator(spec).MakeInstance(0, 0);
  const Vec v = ex.Extract(item.image);
  EXPECT_EQ(v.size(), ex.dim());
}

TEST(ExtractorTest, WeightScalesBlock) {
  FeatureExtractor ex1(32, 32), ex2(32, 32);
  ex1.Add(std::make_shared<ColorMomentsDescriptor>(), 1.0f);
  ex2.Add(std::make_shared<ColorMomentsDescriptor>(), 2.0f);
  const ImageU8 img = ToU8(SolidImage(32, {0.5f, 0.25f, 0.75f}));
  const Vec a = ex1.Extract(img);
  const Vec b = ex2.Extract(img);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(b[i], 2 * a[i], 1e-5);
}

TEST(ExtractorTest, GrayscaleInputHandled) {
  FeatureExtractor ex(32, 32);
  ex.Add(std::make_shared<ColorMomentsDescriptor>(), 1.0f);
  ImageU8 gray(20, 20, 1, 128);
  const Vec v = ex.Extract(gray);
  EXPECT_EQ(v.size(), 9u);
  EXPECT_NEAR(v[0], 0.5f, 0.01f);  // all channels replicate luminance
  EXPECT_NEAR(v[3], 0.5f, 0.01f);
}

TEST(ExtractorTest, ResizeNormalizesInputSizes) {
  // Same scene at two resolutions should land close in feature space.
  CorpusSpec big_spec;
  big_spec.num_classes = 1;
  big_spec.images_per_class = 1;
  big_spec.width = big_spec.height = 128;
  const auto item = CorpusGenerator(big_spec).MakeInstance(0, 0);
  const ImageU8 small = Resize(item.image, 64, 64);

  FeatureExtractor ex(64, 64);
  auto hsv = std::make_shared<HsvQuantizer>(18, 3, 3);
  ex.Add(std::make_shared<ColorHistogramDescriptor>(hsv), 1.0f);
  const Vec a = ex.Extract(item.image);
  const Vec b = ex.Extract(small);
  EXPECT_LT(L1Distance().Distance(a, b), 0.15);
}

TEST(DescriptorRegistryTest, AllStandardNamesConstruct) {
  for (const std::string& name : StandardDescriptorNames()) {
    const auto desc = MakeStandardDescriptor(name);
    ASSERT_TRUE(desc.ok()) << name;
    EXPECT_GT(desc.value()->dim(), 0u) << name;
  }
}

TEST(DescriptorRegistryTest, UnknownNameRejected) {
  EXPECT_EQ(MakeStandardDescriptor("bogus").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DescriptorRegistryTest, SingleDescriptorExtractorWorks) {
  const auto ex = MakeSingleDescriptorExtractor("color_hist", 64);
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->dim(), 162u);
  const Vec v = ex->Extract(ToU8(SolidImage(32, {0.9f, 0.2f, 0.2f})));
  EXPECT_EQ(v.size(), 162u);
}

TEST(ExtractorTest, NameListsBlocks) {
  const FeatureExtractor ex = MakeDefaultExtractor(64);
  const std::string name = ex.Name();
  EXPECT_NE(name.find("color_hist"), std::string::npos);
  EXPECT_NE(name.find("glcm"), std::string::npos);
}

}  // namespace
}  // namespace cbix
