#include <gtest/gtest.h>

#include "corpus/vector_workload.h"
#include "index/kd_tree.h"
#include "index/linear_scan.h"
#include "index/rtree.h"

namespace cbix {
namespace {

std::vector<Vec> ClusteredData(size_t n, size_t dim, uint64_t seed = 5) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = n;
  spec.dim = dim;
  spec.seed = seed;
  return GenerateVectors(spec);
}

TEST(KdTreeTest, NameAndDims) {
  KdTreeOptions o;
  o.metric = MinkowskiKind::kL1;
  KdTree tree(o);
  ASSERT_TRUE(tree.Build(ClusteredData(100, 5)).ok());
  EXPECT_EQ(tree.dim(), 5u);
  EXPECT_NE(tree.Name().find("l1"), std::string::npos);
}

TEST(KdTreeTest, MemoryGrowsWithData) {
  KdTree small((KdTreeOptions()));
  KdTree large((KdTreeOptions()));
  ASSERT_TRUE(small.Build(ClusteredData(50, 4)).ok());
  ASSERT_TRUE(large.Build(ClusteredData(500, 4)).ok());
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

TEST(KdTreeTest, PrunesInLowDimensions) {
  KdTreeOptions o;
  o.leaf_size = 8;
  KdTree tree(o);
  const auto data = ClusteredData(5000, 2);
  ASSERT_TRUE(tree.Build(data).ok());
  SearchStats stats;
  tree.KnnSearch(data[42], 3, &stats);
  // In 2-D a KD-tree should touch far less than 20% of the data.
  EXPECT_LT(stats.distance_evals, 1000u);
}

TEST(RTreeTest, DynamicInsertMatchesBulkLoadResults) {
  const auto data = ClusteredData(400, 6);

  RTreeOptions bulk_opts;
  RTree bulk(bulk_opts);
  ASSERT_TRUE(bulk.Build(data).ok());

  RTreeOptions dyn_opts;
  dyn_opts.bulk_load = false;
  RTree dynamic(dyn_opts);
  ASSERT_TRUE(dynamic.Build(data).ok());

  LinearScanIndex reference(MakeMinkowskiMetric(MinkowskiKind::kL2));
  ASSERT_TRUE(reference.Build(data).ok());

  for (int qi = 0; qi < 8; ++qi) {
    const Vec& q = data[qi * 47 % data.size()];
    const auto want = KnnSearch(reference, q, 9);
    const auto got_bulk = KnnSearch(bulk, q, 9);
    const auto got_dyn = KnnSearch(dynamic, q, 9);
    ASSERT_EQ(got_bulk.size(), want.size());
    ASSERT_EQ(got_dyn.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got_bulk[i].id, want[i].id);
      EXPECT_EQ(got_dyn[i].id, want[i].id);
    }
  }
}

TEST(RTreeTest, IncrementalInsertAfterBuild) {
  RTreeOptions o;
  o.bulk_load = false;
  RTree tree(o);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        tree.Insert(Vec{static_cast<float>(i), static_cast<float>(i % 7)})
            .ok());
  }
  EXPECT_EQ(tree.size(), 100u);
  const auto hits = RangeSearch(tree, Vec{50.0f, 1.0f}, 0.5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 50u);
}

TEST(RTreeTest, InsertRejectsDimensionMismatch) {
  RTree tree((RTreeOptions()));
  ASSERT_TRUE(tree.Insert(Vec{1.0f, 2.0f}).ok());
  EXPECT_EQ(tree.Insert(Vec{1.0f}).code(), StatusCode::kInvalidArgument);
}

TEST(RTreeTest, BulkLoadHeightIsLogarithmic) {
  RTreeOptions o;
  o.max_entries = 16;
  RTree tree(o);
  ASSERT_TRUE(tree.Build(ClusteredData(4096, 4)).ok());
  // ceil(log_16(4096/16)) + 1 = 3 levels; allow +1 slack for packing.
  EXPECT_LE(tree.Height(), 4u);
  EXPECT_GE(tree.Height(), 2u);
}

TEST(RTreeTest, DynamicTreeTallerButValid) {
  RTreeOptions o;
  o.bulk_load = false;
  o.max_entries = 8;
  o.min_entries = 3;
  RTree tree(o);
  ASSERT_TRUE(tree.Build(ClusteredData(1000, 4)).ok());
  EXPECT_GE(tree.Height(), 3u);
  // Exactness already covered by the property suite; sanity check here.
  const auto knn = KnnSearch(tree, Vec(4, 0.5f), 5);
  EXPECT_EQ(knn.size(), 5u);
}

TEST(RTreeTest, StrBulkLoadPrunesWell) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = 8000;
  spec.dim = 4;
  spec.num_clusters = 64;
  spec.cluster_sigma = 0.02;
  const auto data = GenerateVectors(spec);
  RTree tree((RTreeOptions()));
  ASSERT_TRUE(tree.Build(data).ok());
  SearchStats stats;
  tree.KnnSearch(data[100], 5, &stats);
  EXPECT_LT(stats.distance_evals, 2000u);
}

TEST(RTreeTest, RangeSearchOnUniformGrid) {
  // A regular 2-D grid makes expected counts exact: range r=1.0 (L2)
  // around an interior lattice point covers the 4 axis neighbours +
  // itself.
  std::vector<Vec> grid;
  for (int y = 0; y < 20; ++y) {
    for (int x = 0; x < 20; ++x) {
      grid.push_back({static_cast<float>(x), static_cast<float>(y)});
    }
  }
  RTree tree((RTreeOptions()));
  ASSERT_TRUE(tree.Build(grid).ok());
  const auto hits = RangeSearch(tree, Vec{10.0f, 10.0f}, 1.0);
  EXPECT_EQ(hits.size(), 5u);
  const auto hits_diag = RangeSearch(tree, Vec{10.0f, 10.0f}, 1.5);
  EXPECT_EQ(hits_diag.size(), 9u);  // + 4 diagonal neighbours
}

TEST(RTreeTest, HighDimDynamicInsertDoesNotDegenerate) {
  // Regression: volume-based enlargement multiplies 100+ per-axis
  // extents, overflowing double to inf once a node covers data with
  // extents > ~256 at dim 128; enlargement became inf - inf = NaN,
  // every NaN comparison lost, and ChooseLeaf funneled every insert
  // into child 0 — a degenerate tree with useless pruning. The
  // margin-based choice stays finite at any dimensionality.
  const size_t kDim = 128;
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = 400;
  spec.dim = kDim;
  spec.num_clusters = 4;
  spec.cluster_sigma = 0.01;
  std::vector<Vec> data = GenerateVectors(spec);
  // Scale into overflow territory: cluster separation ~1000 per axis
  // makes any cross-cluster cover's volume (>= 300^128) infinite.
  for (Vec& v : data) {
    for (float& x : v) x *= 1000.0f;
  }

  RTreeOptions o;
  o.bulk_load = false;
  o.max_entries = 8;
  o.min_entries = 3;
  RTree tree(o);
  ASSERT_TRUE(tree.Build(data).ok());

  LinearScanIndex reference(MakeMinkowskiMetric(MinkowskiKind::kL2));
  ASSERT_TRUE(reference.Build(data).ok());

  for (int qi = 0; qi < 6; ++qi) {
    const Vec& q = data[qi * 61 % data.size()];
    const auto want = KnnSearch(reference, q, 5);
    SearchStats stats;
    const auto got = tree.KnnSearch(q, 5, &stats);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_EQ(got[i].distance, want[i].distance);
    }
    // An informed ChooseLeaf separates the 4 well-spread clusters into
    // disjoint subtrees, so MINDIST pruning skips most of the corpus;
    // the NaN-degenerate tree mixed clusters in every leaf and
    // evaluated nearly all 400 points per query.
    EXPECT_LT(stats.distance_evals, data.size() / 2)
        << "query " << qi << ": pruning degenerated at dim " << kDim;
  }
}

TEST(MinkowskiKindTest, NamesAndFactory) {
  EXPECT_EQ(MinkowskiKindName(MinkowskiKind::kL1), "l1");
  EXPECT_EQ(MinkowskiKindName(MinkowskiKind::kL2), "l2");
  EXPECT_EQ(MinkowskiKindName(MinkowskiKind::kLInf), "linf");
  const auto metric = MakeMinkowskiMetric(MinkowskiKind::kL1);
  EXPECT_DOUBLE_EQ(metric->Distance({0, 0}, {1, 1}), 2.0);
}

}  // namespace
}  // namespace cbix
