// Engine Save/Load round-trips across the config grid the quantized
// PR left uncovered: shards > 1 x quantization (the sharded loader
// takes the rebuild path, re-quantizing per shard) and the empty-store
// edge. Rebuilt results must match the pre-save results bit-identically
// — same ids, same distances.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "corpus/vector_workload.h"

namespace cbix {
namespace {

std::vector<Vec> ClusteredData(size_t n, size_t dim, uint64_t seed = 33) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = n;
  spec.dim = dim;
  spec.seed = seed;
  return GenerateVectors(spec);
}

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "cbix_engine_persist_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

struct PersistCase {
  std::string name;
  size_t shards;
  QuantizationKind quantization;
};

class EnginePersistence : public ::testing::TestWithParam<PersistCase> {};

TEST_P(EnginePersistence, SaveLoadRoundTripIsBitIdentical) {
  const PersistCase& param = GetParam();
  const size_t kDim = 24;
  const auto data = ClusteredData(400, kDim);
  const auto queries = ClusteredData(8, kDim, /*seed=*/91);

  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = MetricKind::kL2;
  config.shards = param.shards;
  config.quantization = param.quantization;
  config.pq_m = 6;
  config.rerank_factor = 8;

  CbirEngine engine((FeatureExtractor()), config);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(engine
                    .AddFeatureVector(data[i], "v" + std::to_string(i),
                                      static_cast<int32_t>(i % 7))
                    .ok());
  }
  ASSERT_TRUE(engine.BuildIndex().ok());

  std::vector<std::vector<CbirEngine::Match>> before;
  for (const Vec& q : queries) {
    auto result = engine.QueryKnnByVector(q, 10);
    ASSERT_TRUE(result.ok());
    before.push_back(std::move(result).value());
  }

  const std::string path = TempPath(param.name);
  ASSERT_TRUE(engine.Save(path).ok());

  CbirEngine loaded((FeatureExtractor()), config);
  ASSERT_TRUE(loaded.Load(path).ok());
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), engine.size());
  EXPECT_EQ(loaded.config().quantization, param.quantization);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto result = loaded.QueryKnnByVector(queries[qi], 10);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), before[qi].size()) << param.name;
    for (size_t i = 0; i < before[qi].size(); ++i) {
      EXPECT_EQ(result->at(i).id, before[qi][i].id) << param.name;
      EXPECT_EQ(result->at(i).distance, before[qi][i].distance)
          << param.name << " query " << qi << " rank " << i;
      EXPECT_EQ(result->at(i).name, before[qi][i].name);
      EXPECT_EQ(result->at(i).label, before[qi][i].label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByQuantization, EnginePersistence,
    ::testing::Values(
        PersistCase{"flat_none", 1, QuantizationKind::kNone},
        PersistCase{"flat_int8", 1, QuantizationKind::kInt8},
        PersistCase{"flat_pq", 1, QuantizationKind::kPq},
        PersistCase{"sharded_none", 3, QuantizationKind::kNone},
        PersistCase{"sharded_int8", 3, QuantizationKind::kInt8},
        PersistCase{"sharded_pq", 3, QuantizationKind::kPq}),
    [](const ::testing::TestParamInfo<PersistCase>& info) {
      return info.param.name;
    });

TEST(EnginePersistenceEdge, EmptyStoreRoundTrips) {
  for (const size_t shards : {size_t{1}, size_t{3}}) {
    for (const QuantizationKind quant :
         {QuantizationKind::kNone, QuantizationKind::kInt8}) {
      EngineConfig config;
      config.index_kind = IndexKind::kLinearScan;
      config.metric = MetricKind::kL2;
      config.shards = shards;
      config.quantization = quant;
      CbirEngine engine((FeatureExtractor()), config);

      const std::string path =
          TempPath("empty_" + std::to_string(shards) + "_" +
                   QuantizationKindName(quant));
      ASSERT_TRUE(engine.Save(path).ok());

      CbirEngine loaded((FeatureExtractor()), config);
      ASSERT_TRUE(loaded.Load(path).ok());
      std::remove(path.c_str());

      EXPECT_EQ(loaded.size(), 0u);
      const auto result = loaded.QueryKnnByVector(Vec{}, 3);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(result->empty());

      // The loaded engine must accept new content and answer queries.
      ASSERT_TRUE(loaded.AddFeatureVector(Vec{1.0f, 2.0f}, "first").ok());
      const auto knn = loaded.QueryKnnByVector(Vec{1.0f, 2.0f}, 1);
      ASSERT_TRUE(knn.ok());
      ASSERT_EQ(knn->size(), 1u);
      EXPECT_EQ(knn->at(0).name, "first");
    }
  }
}

}  // namespace
}  // namespace cbix
