// Engine Save/Load round-trips across the config grid: index kind
// (linear scan and HNSW) x shards x quantization, plus the empty-store
// edge and a hand-built v2-layout file (no HNSW section) that must
// still load. Loaded results must match the pre-save results
// bit-identically — same ids, same distances — and re-saving a loaded
// engine must reproduce the file byte for byte (the payloads the save
// path emits are canonical: flat HNSW graphs persist their arrays,
// sharded ones rebuild seeded-deterministically).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "corpus/vector_workload.h"
#include "util/serialize.h"

namespace cbix {
namespace {

constexpr uint32_t kEngineFileMagic = 0x43425845;  // "CBXE"

std::vector<Vec> ClusteredData(size_t n, size_t dim, uint64_t seed = 33) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = n;
  spec.dim = dim;
  spec.seed = seed;
  return GenerateVectors(spec);
}

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "cbix_engine_persist_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

struct PersistCase {
  std::string name;
  IndexKind index_kind;
  size_t shards;
  QuantizationKind quantization;
};

class EnginePersistence : public ::testing::TestWithParam<PersistCase> {};

TEST_P(EnginePersistence, SaveLoadRoundTripIsBitIdentical) {
  const PersistCase& param = GetParam();
  const size_t kDim = 24;
  const auto data = ClusteredData(400, kDim);
  const auto queries = ClusteredData(8, kDim, /*seed=*/91);

  EngineConfig config;
  config.index_kind = param.index_kind;
  config.metric = MetricKind::kL2;
  config.shards = param.shards;
  config.quantization = param.quantization;
  config.pq_m = 6;
  config.rerank_factor = 8;
  config.hnsw_m = 8;
  config.hnsw_ef_construction = 60;

  CbirEngine engine((FeatureExtractor()), config);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(engine
                    .AddFeatureVector(data[i], "v" + std::to_string(i),
                                      static_cast<int32_t>(i % 7))
                    .ok());
  }
  ASSERT_TRUE(engine.BuildIndex().ok());

  std::vector<std::vector<CbirEngine::Match>> before;
  for (const Vec& q : queries) {
    auto result = engine.QueryKnnByVector(q, 10);
    ASSERT_TRUE(result.ok());
    before.push_back(std::move(result).value());
  }

  const std::string path = TempPath(param.name);
  ASSERT_TRUE(engine.Save(path).ok());
  const auto saved_bytes = ReadAll(path);

  CbirEngine loaded((FeatureExtractor()), config);
  ASSERT_TRUE(loaded.Load(path).ok());
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), engine.size());
  EXPECT_EQ(loaded.config().quantization, param.quantization);
  EXPECT_EQ(loaded.config().index_kind, param.index_kind);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto result = loaded.QueryKnnByVector(queries[qi], 10);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), before[qi].size()) << param.name;
    for (size_t i = 0; i < before[qi].size(); ++i) {
      EXPECT_EQ(result->at(i).id, before[qi][i].id) << param.name;
      EXPECT_EQ(result->at(i).distance, before[qi][i].distance)
          << param.name << " query " << qi << " rank " << i;
      EXPECT_EQ(result->at(i).name, before[qi][i].name);
      EXPECT_EQ(result->at(i).label, before[qi][i].label);
    }
  }

  // Save(Load(file)) == file, byte for byte. For a flat HNSW config
  // this proves the graph arrays round-tripped exactly; for a sharded
  // one it proves the rebuild path reproduced the persisted state.
  const std::string resave = TempPath(param.name + "_resave");
  ASSERT_TRUE(loaded.Save(resave).ok());
  const auto resaved_bytes = ReadAll(resave);
  std::remove(resave.c_str());
  EXPECT_EQ(resaved_bytes, saved_bytes) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    KindByShardsByQuantization, EnginePersistence,
    ::testing::Values(
        PersistCase{"flat_none", IndexKind::kLinearScan, 1,
                    QuantizationKind::kNone},
        PersistCase{"flat_int8", IndexKind::kLinearScan, 1,
                    QuantizationKind::kInt8},
        PersistCase{"flat_pq", IndexKind::kLinearScan, 1,
                    QuantizationKind::kPq},
        PersistCase{"sharded_none", IndexKind::kLinearScan, 3,
                    QuantizationKind::kNone},
        PersistCase{"sharded_int8", IndexKind::kLinearScan, 3,
                    QuantizationKind::kInt8},
        PersistCase{"sharded_pq", IndexKind::kLinearScan, 3,
                    QuantizationKind::kPq},
        PersistCase{"hnsw_flat_none", IndexKind::kHnsw, 1,
                    QuantizationKind::kNone},
        PersistCase{"hnsw_flat_int8", IndexKind::kHnsw, 1,
                    QuantizationKind::kInt8},
        PersistCase{"hnsw_flat_pq", IndexKind::kHnsw, 1,
                    QuantizationKind::kPq},
        PersistCase{"hnsw_sharded_none", IndexKind::kHnsw, 3,
                    QuantizationKind::kNone},
        PersistCase{"hnsw_sharded_int8", IndexKind::kHnsw, 3,
                    QuantizationKind::kInt8}),
    [](const ::testing::TestParamInfo<PersistCase>& info) {
      return info.param.name;
    });

TEST(EnginePersistenceEdge, EmptyStoreRoundTrips) {
  for (const IndexKind kind : {IndexKind::kLinearScan, IndexKind::kHnsw}) {
    for (const size_t shards : {size_t{1}, size_t{3}}) {
      for (const QuantizationKind quant :
           {QuantizationKind::kNone, QuantizationKind::kInt8}) {
        EngineConfig config;
        config.index_kind = kind;
        config.metric = MetricKind::kL2;
        config.shards = shards;
        config.quantization = quant;
        CbirEngine engine((FeatureExtractor()), config);

        const std::string path =
            TempPath("empty_" + IndexKindName(kind) + "_" +
                     std::to_string(shards) + "_" + QuantizationKindName(quant));
        ASSERT_TRUE(engine.Save(path).ok());

        CbirEngine loaded((FeatureExtractor()), config);
        ASSERT_TRUE(loaded.Load(path).ok());
        std::remove(path.c_str());

        EXPECT_EQ(loaded.size(), 0u);
        const auto result = loaded.QueryKnnByVector(Vec{}, 3);
        ASSERT_TRUE(result.ok());
        EXPECT_TRUE(result->empty());

        // The loaded engine must accept new content and answer queries.
        ASSERT_TRUE(loaded.AddFeatureVector(Vec{1.0f, 2.0f}, "first").ok());
        const auto knn = loaded.QueryKnnByVector(Vec{1.0f, 2.0f}, 1);
        ASSERT_TRUE(knn.ok());
        ASSERT_EQ(knn->size(), 1u);
        EXPECT_EQ(knn->at(0).name, "first");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Version-2 files (pre-HNSW layout) must keep loading. A v2 payload is
// the v3 payload minus the three hnsw config u64s (offset 28), minus
// the u64 length prefix on the quant payload (v2 stored it inline),
// and minus the trailing HNSW section; reframe with version 2.
std::vector<uint8_t> V2PayloadFromV3(const std::vector<uint8_t>& v3) {
  std::vector<uint8_t> v2 = v3;
  // Drop hnsw_m / hnsw_ef_construction / hnsw_ef_search.
  EXPECT_GE(v2.size(), 52u);
  v2.erase(v2.begin() + 28, v2.begin() + 52);
  // Walk to the quant section: dim u64 @28, store vector @36.
  uint64_t store_len = 0;
  std::memcpy(&store_len, v2.data() + 36, sizeof(store_len));
  size_t pos = 44 + static_cast<size_t>(store_len);
  EXPECT_LT(pos, v2.size());
  const uint8_t has_quant = v2[pos];
  ++pos;
  if (has_quant != 0) {
    // v3 length-prefixes the quant payload; v2 wrote it inline.
    v2.erase(v2.begin() + pos, v2.begin() + pos + 8);
  }
  // The HNSW section (flag byte + optional payload) is everything
  // after the quant payload; for these configs the flag is the last
  // byte and must be 0 (linear scan never persists a graph).
  EXPECT_EQ(v2.back(), 0u);
  v2.pop_back();
  return v2;
}

TEST(EnginePersistenceEdge, V2FilesWithoutHnswSectionStillLoad) {
  const size_t kDim = 16;
  const auto data = ClusteredData(150, kDim, 55);
  const auto queries = ClusteredData(6, kDim, 56);
  for (const QuantizationKind quant :
       {QuantizationKind::kNone, QuantizationKind::kInt8,
        QuantizationKind::kPq}) {
    EngineConfig config;
    config.index_kind = IndexKind::kLinearScan;
    config.metric = MetricKind::kL2;
    config.quantization = quant;
    config.pq_m = 4;
    CbirEngine engine((FeatureExtractor()), config);
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(engine.BuildIndex().ok());
    std::vector<std::vector<CbirEngine::Match>> before;
    for (const Vec& q : queries) {
      auto result = engine.QueryKnnByVector(q, 5);
      ASSERT_TRUE(result.ok());
      before.push_back(std::move(result).value());
    }

    const std::string v3_path = TempPath("v2src_" + QuantizationKindName(quant));
    ASSERT_TRUE(engine.Save(v3_path).ok());
    std::vector<uint8_t> payload;
    ASSERT_TRUE(ReadFramedFile(v3_path, kEngineFileMagic, 3, &payload).ok());
    std::remove(v3_path.c_str());

    const std::string v2_path = TempPath("v2_" + QuantizationKindName(quant));
    ASSERT_TRUE(WriteFramedFile(v2_path, kEngineFileMagic, 2,
                                V2PayloadFromV3(payload))
                    .ok());

    CbirEngine loaded((FeatureExtractor()), config);
    ASSERT_TRUE(loaded.Load(v2_path).ok());
    std::remove(v2_path.c_str());
    ASSERT_EQ(loaded.size(), data.size());
    EXPECT_EQ(loaded.config().quantization, quant);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto result = loaded.QueryKnnByVector(queries[qi], 5);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->size(), before[qi].size());
      for (size_t i = 0; i < before[qi].size(); ++i) {
        EXPECT_EQ(result->at(i).id, before[qi][i].id);
        EXPECT_EQ(result->at(i).distance, before[qi][i].distance);
      }
    }
  }
}

}  // namespace
}  // namespace cbix
