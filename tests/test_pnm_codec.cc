#include "image/pnm_codec.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace cbix {
namespace {

ImageU8 MakeTestImage(int w, int h, int channels) {
  ImageU8 img(w, h, channels);
  uint8_t v = 0;
  for (auto& s : img.data()) s = v += 31;
  return img;
}

TEST(PnmCodecTest, EncodeDecodeRoundTripP6) {
  const ImageU8 img = MakeTestImage(7, 5, 3);
  const auto encoded = EncodePnm(img);
  ASSERT_TRUE(encoded.ok());
  const auto decoded = DecodePnm(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), img);
}

TEST(PnmCodecTest, EncodeDecodeRoundTripP5) {
  const ImageU8 img = MakeTestImage(9, 4, 1);
  const auto encoded = EncodePnm(img);
  ASSERT_TRUE(encoded.ok());
  ASSERT_GE(encoded.value().size(), 2u);
  EXPECT_EQ(encoded.value()[1], '5');
  const auto decoded = DecodePnm(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), img);
}

TEST(PnmCodecTest, DecodeAsciiP2) {
  const std::string text = "P2\n# comment\n3 2\n255\n0 10 20\n30 40 255\n";
  const std::vector<uint8_t> bytes(text.begin(), text.end());
  const auto decoded = DecodePnm(bytes);
  ASSERT_TRUE(decoded.ok());
  const ImageU8& img = decoded.value();
  EXPECT_EQ(img.width(), 3);
  EXPECT_EQ(img.height(), 2);
  EXPECT_EQ(img.channels(), 1);
  EXPECT_EQ(img.at(0, 0), 0);
  EXPECT_EQ(img.at(1, 0), 10);
  EXPECT_EQ(img.at(2, 1), 255);
}

TEST(PnmCodecTest, DecodeAsciiP3) {
  const std::string text = "P3 2 1 255  1 2 3  4 5 6";
  const std::vector<uint8_t> bytes(text.begin(), text.end());
  const auto decoded = DecodePnm(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->channels(), 3);
  EXPECT_EQ(decoded->at(0, 0, 0), 1);
  EXPECT_EQ(decoded->at(1, 0, 2), 6);
}

TEST(PnmCodecTest, CommentsEverywhere) {
  const std::string text =
      "P2\n#a\n 2 #b\n 1\n# c\n255\n# d\n7 8\n";
  const std::vector<uint8_t> bytes(text.begin(), text.end());
  const auto decoded = DecodePnm(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->at(0, 0), 7);
  EXPECT_EQ(decoded->at(1, 0), 8);
}

TEST(PnmCodecTest, MaxvalRescaling) {
  const std::string text = "P2 2 1 15 0 15";
  const std::vector<uint8_t> bytes(text.begin(), text.end());
  const auto decoded = DecodePnm(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->at(0, 0), 0);
  EXPECT_EQ(decoded->at(1, 0), 255);
}

TEST(PnmCodecTest, RejectsBadMagic) {
  const std::string text = "Q5 2 2 255 ....";
  const std::vector<uint8_t> bytes(text.begin(), text.end());
  EXPECT_EQ(DecodePnm(bytes).status().code(), StatusCode::kCorruption);
}

TEST(PnmCodecTest, RejectsUnsupportedVariant) {
  const std::string text = "P4\n2 2\n";
  const std::vector<uint8_t> bytes(text.begin(), text.end());
  EXPECT_EQ(DecodePnm(bytes).status().code(), StatusCode::kUnimplemented);
}

TEST(PnmCodecTest, RejectsTruncatedRaster) {
  std::string text = "P5 4 4 255 ";
  text += "only-few";
  const std::vector<uint8_t> bytes(text.begin(), text.end());
  EXPECT_EQ(DecodePnm(bytes).status().code(), StatusCode::kCorruption);
}

TEST(PnmCodecTest, RejectsSampleAboveMaxval) {
  const std::string text = "P2 1 1 100 200";
  const std::vector<uint8_t> bytes(text.begin(), text.end());
  EXPECT_EQ(DecodePnm(bytes).status().code(), StatusCode::kCorruption);
}

TEST(PnmCodecTest, RejectsZeroDimensions) {
  const std::string text = "P2 0 2 255";
  const std::vector<uint8_t> bytes(text.begin(), text.end());
  EXPECT_EQ(DecodePnm(bytes).status().code(), StatusCode::kCorruption);
}

TEST(PnmCodecTest, EncodeRejectsTwoChannelImage) {
  const ImageU8 img(2, 2, 2);
  EXPECT_EQ(EncodePnm(img).status().code(), StatusCode::kInvalidArgument);
}

TEST(PnmCodecTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "cbix_pnm_test.ppm";
  const ImageU8 img = MakeTestImage(12, 8, 3);
  ASSERT_TRUE(WritePnm(path, img).ok());
  const auto loaded = ReadPnm(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), img);
  std::remove(path.c_str());
}

TEST(PnmCodecTest, ReadMissingFileIsIoError) {
  EXPECT_EQ(ReadPnm("/nonexistent/____cbix.ppm").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace cbix
