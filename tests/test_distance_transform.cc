#include "image/distance_transform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace cbix {
namespace {

TEST(ChamferDtTest, FeaturePixelsAreZero) {
  ImageU8 mask(8, 8, 1, 0);
  mask.at(3, 4) = 1;
  mask.at(7, 0) = 1;
  const ImageF dt = ChamferDistanceTransform(mask);
  EXPECT_EQ(dt.at(3, 4), 0.0f);
  EXPECT_EQ(dt.at(7, 0), 0.0f);
}

TEST(ChamferDtTest, SingleFeatureDistancesWithinChamferError) {
  // The 3-4 chamfer mask approximates Euclidean distance within ~8%.
  ImageU8 mask(31, 31, 1, 0);
  mask.at(15, 15) = 1;
  const ImageF dt = ChamferDistanceTransform(mask);
  for (int y = 0; y < 31; ++y) {
    for (int x = 0; x < 31; ++x) {
      const float exact = std::sqrt(static_cast<float>(
          (x - 15) * (x - 15) + (y - 15) * (y - 15)));
      EXPECT_LE(std::fabs(dt.at(x, y) - exact), exact * 0.09f + 1e-4f)
          << "at (" << x << "," << y << ")";
    }
  }
}

TEST(ChamferDtTest, MatchesBruteForceOnRandomMasks) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    ImageU8 mask(24, 18, 1, 0);
    for (int i = 0; i < 10; ++i) {
      mask.at(static_cast<int>(rng.NextBelow(24)),
              static_cast<int>(rng.NextBelow(18))) = 1;
    }
    const ImageF chamfer = ChamferDistanceTransform(mask);
    const ImageF exact = BruteForceEuclideanDistanceTransform(mask);
    for (int y = 0; y < 18; ++y) {
      for (int x = 0; x < 24; ++x) {
        EXPECT_LE(std::fabs(chamfer.at(x, y) - exact.at(x, y)),
                  exact.at(x, y) * 0.09f + 1e-3f);
      }
    }
  }
}

TEST(ChamferDtTest, EmptyMaskSaturates) {
  ImageU8 mask(6, 6, 1, 0);
  const ImageF dt = ChamferDistanceTransform(mask, /*no_feature_value=*/50.0f);
  for (float v : dt.data()) EXPECT_EQ(v, 50.0f);
}

TEST(ChamferDtTest, AllFeaturesZeroEverywhere) {
  ImageU8 mask(5, 5, 1, 1);
  const ImageF dt = ChamferDistanceTransform(mask);
  for (float v : dt.data()) EXPECT_EQ(v, 0.0f);
}

TEST(ChamferDtTest, MonotoneAwayFromLine) {
  // Feature column at x=0: distance should grow monotonically with x.
  ImageU8 mask(16, 4, 1, 0);
  for (int y = 0; y < 4; ++y) mask.at(0, y) = 1;
  const ImageF dt = ChamferDistanceTransform(mask);
  for (int y = 0; y < 4; ++y) {
    for (int x = 1; x < 16; ++x) {
      EXPECT_GT(dt.at(x, y), dt.at(x - 1, y));
      EXPECT_NEAR(dt.at(x, y), static_cast<float>(x), 0.01f);
    }
  }
}

TEST(SalienceDtTest, StrongEdgeSeedsNearZero) {
  ImageF salience(9, 9, 1, 0.0f);
  salience.at(4, 4) = 1.0f;  // one maximally salient pixel
  const ImageF sdt = SalienceDistanceTransform(salience);
  EXPECT_NEAR(sdt.at(4, 4), 0.0f, 1e-5);
  // Distances grow away from the seed.
  EXPECT_GT(sdt.at(0, 0), sdt.at(3, 3));
}

TEST(SalienceDtTest, WeakEdgesSeedHigherThanStrong) {
  ImageF salience(16, 4, 1, 0.0f);
  salience.at(2, 2) = 1.0f;   // strong
  salience.at(12, 2) = 0.3f;  // weak
  const float alpha = 8.0f;
  const ImageF sdt = SalienceDistanceTransform(salience, 1e-4f, alpha);
  EXPECT_NEAR(sdt.at(2, 2), 0.0f, 1e-5);
  EXPECT_NEAR(sdt.at(12, 2), alpha * (1.0f - 0.3f), 0.01f);
}

TEST(SalienceDtTest, NoSalienceYieldsInfiniteField) {
  ImageF salience(5, 5, 1, 0.0f);
  const ImageF sdt = SalienceDistanceTransform(salience);
  for (float v : sdt.data()) EXPECT_GE(v, 1e8f);
}

TEST(SalienceDtTest, PropagationBoundedBySeeds) {
  // SDT values can never exceed seed + chamfer distance to that seed.
  Rng rng(7);
  ImageF salience(12, 12, 1, 0.0f);
  for (int i = 0; i < 6; ++i) {
    salience.at(static_cast<int>(rng.NextBelow(12)),
                static_cast<int>(rng.NextBelow(12))) =
        0.2f + 0.8f * static_cast<float>(rng.NextDouble());
  }
  const ImageF sdt = SalienceDistanceTransform(salience);
  for (float v : sdt.data()) {
    EXPECT_LT(v, 40.0f);  // image diameter ~17 + max seed 8
  }
}

}  // namespace
}  // namespace cbix
