#include <gtest/gtest.h>

#include "image/integral.h"
#include "image/resize.h"
#include "util/random.h"

namespace cbix {
namespace {

ImageF RandomImage(int w, int h, uint64_t seed) {
  Rng rng(seed);
  ImageF img(w, h, 1);
  for (auto& v : img.data()) v = static_cast<float>(rng.NextDouble());
  return img;
}

TEST(ResizeTest, SameSizeIsIdentity) {
  const ImageF img = RandomImage(10, 8, 1);
  EXPECT_EQ(Resize(img, 10, 8), img);
}

TEST(ResizeTest, OutputShape) {
  const ImageF img = RandomImage(16, 12, 2);
  const ImageF out = Resize(img, 7, 5);
  EXPECT_EQ(out.width(), 7);
  EXPECT_EQ(out.height(), 5);
  EXPECT_EQ(out.channels(), 1);
}

TEST(ResizeTest, ConstantImageStaysConstant) {
  ImageF img(9, 9, 3, 0.6f);
  for (auto filter : {ResizeFilter::kNearest, ResizeFilter::kBilinear}) {
    const ImageF out = Resize(img, 17, 3, filter);
    for (float v : out.data()) EXPECT_NEAR(v, 0.6f, 1e-6);
  }
}

TEST(ResizeTest, BilinearValuesWithinInputRange) {
  const ImageF img = RandomImage(13, 11, 4);
  float lo = 1e9f, hi = -1e9f;
  for (float v : img.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const ImageF out = Resize(img, 29, 31);
  for (float v : out.data()) {
    EXPECT_GE(v, lo - 1e-6f);
    EXPECT_LE(v, hi + 1e-6f);
  }
}

TEST(ResizeTest, Upscale2xNearestReplicatesPixels) {
  ImageF img(2, 2, 1);
  img.at(0, 0) = 0.1f;
  img.at(1, 0) = 0.2f;
  img.at(0, 1) = 0.3f;
  img.at(1, 1) = 0.4f;
  const ImageF out = Resize(img, 4, 4, ResizeFilter::kNearest);
  EXPECT_EQ(out.at(0, 0), 0.1f);
  EXPECT_EQ(out.at(1, 1), 0.1f);
  EXPECT_EQ(out.at(2, 0), 0.2f);
  EXPECT_EQ(out.at(3, 3), 0.4f);
}

TEST(ResizeTest, DownscalePreservesMeanApproximately) {
  const ImageF img = RandomImage(64, 64, 6);
  const ImageF out = Resize(img, 16, 16);
  double mean_in = 0, mean_out = 0;
  for (float v : img.data()) mean_in += v;
  for (float v : out.data()) mean_out += v;
  mean_in /= img.data().size();
  mean_out /= out.data().size();
  EXPECT_NEAR(mean_in, mean_out, 0.03);
}

TEST(ResizeTest, U8Overload) {
  ImageU8 img(8, 8, 3, 100);
  const ImageU8 out = Resize(img, 4, 4);
  EXPECT_EQ(out.width(), 4);
  for (uint8_t v : out.data()) EXPECT_EQ(v, 100);
}

TEST(IntegralImageTest, MatchesBruteForceSums) {
  const ImageF img = RandomImage(17, 13, 8);
  const IntegralImage integral(img);
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    int x0 = static_cast<int>(rng.NextBelow(17));
    int x1 = static_cast<int>(rng.NextBelow(17));
    int y0 = static_cast<int>(rng.NextBelow(13));
    int y1 = static_cast<int>(rng.NextBelow(13));
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    double expected = 0.0;
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) expected += img.at(x, y);
    }
    EXPECT_NEAR(integral.RectSum(x0, y0, x1, y1), expected, 1e-4);
  }
}

TEST(IntegralImageTest, FullImageSum) {
  const ImageF img = RandomImage(9, 7, 10);
  const IntegralImage integral(img);
  double total = 0.0;
  for (float v : img.data()) total += v;
  EXPECT_NEAR(integral.RectSum(0, 0, 8, 6), total, 1e-4);
}

TEST(IntegralImageTest, SinglePixelRect) {
  const ImageF img = RandomImage(5, 5, 11);
  const IntegralImage integral(img);
  EXPECT_NEAR(integral.RectSum(2, 3, 2, 3), img.at(2, 3), 1e-6);
  EXPECT_NEAR(integral.RectMean(2, 3, 2, 3), img.at(2, 3), 1e-6);
}

TEST(IntegralImageTest, RectMean) {
  ImageF img(4, 4, 1, 0.25f);
  const IntegralImage integral(img);
  EXPECT_NEAR(integral.RectMean(0, 0, 3, 3), 0.25, 1e-6);
}

}  // namespace
}  // namespace cbix
