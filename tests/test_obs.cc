// Observability suite: the contracts of src/obs/ end to end.
//
//   1. Histogram quantiles stay within the log-linear error bound
//      (bucket width <= 1/16 of lower bound => ~6.25% relative error)
//      against a sorted reference, across distributions.
//   2. Registry registration is stable-pointer and idempotent; both
//      export surfaces (Prometheus text, JSON) round-trip the counts.
//   3. Instruments are safe under concurrent writers and live readers
//      (this suite runs under TSan in CI — the Obs name is load-bearing).
//   4. Stats exactness: a linear scan reports distance_evals equal to
//      exactly n_rows per query, across tiles x shards x quantization
//      (quantized backings split the rerank stage into rerank_evals).
//   5. Traces: sampled queries carry a serve.search -> engine.knn_batch
//      -> shard span tree; a failed shard's span records its Status;
//      unsampled queries allocate nothing.
//   6. ServingEngine::StatsSnapshot() and the registry exports agree
//      with each other and with ground truth.
//   7. SlowQueryLog keeps the top-N by latency, slowest first.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/fault_injector.h"
#include "core/serving.h"
#include "corpus/vector_workload.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "util/random.h"

namespace cbix {
namespace {

std::vector<Vec> ClusteredData(size_t n, size_t dim, uint64_t seed = 91) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = n;
  spec.dim = dim;
  spec.seed = seed;
  return GenerateVectors(spec);
}

// ---------------------------------------------------------------------------
// 1. Histogram quantile accuracy.

double ReferenceQuantile(std::vector<uint64_t> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::llround(q * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  return static_cast<double>(sorted[rank - 1]);
}

TEST(ObsHistogram, QuantileWithinLogLinearErrorBound) {
  // Three shapes: uniform, heavy-tailed (squared uniform over a wide
  // range), and bimodal — the bound must hold regardless.
  const double quantiles[] = {0.50, 0.90, 0.99, 0.999};
  for (int shape = 0; shape < 3; ++shape) {
    Rng rng(1000 + static_cast<uint64_t>(shape));
    LatencyHistogram hist;
    std::vector<uint64_t> values;
    for (size_t i = 0; i < 20000; ++i) {
      const double u = rng.NextDouble();
      uint64_t v = 0;
      if (shape == 0) {
        v = static_cast<uint64_t>(u * 50000.0);
      } else if (shape == 1) {
        v = static_cast<uint64_t>(u * u * u * 5e7);
      } else {
        v = u < 0.8 ? static_cast<uint64_t>(u * 500.0)
                    : static_cast<uint64_t>(1e6 + u * 1e6);
      }
      values.push_back(v);
      hist.Observe(v);
    }
    for (const double q : quantiles) {
      const double want = ReferenceQuantile(values, q);
      const double got = hist.Quantile(q);
      // Bucket width <= 1/16 of its lower bound; interpolation keeps
      // the estimate inside the bucket, so 8% relative (plus one unit
      // of slack for the tiny linear buckets) is a safe ceiling.
      const double tolerance = 0.08 * want + 1.0;
      EXPECT_NEAR(got, want, tolerance)
          << "shape=" << shape << " q=" << q << " n=" << values.size();
    }
  }
}

TEST(ObsHistogram, SmallValuesWithinUnitBucket) {
  // Values below kSubBuckets land in unit-wide buckets, so every
  // quantile lands within one unit of the true sample (interpolation
  // positions the estimate inside the owning bucket).
  LatencyHistogram hist;
  for (uint64_t v = 0; v < 16; ++v) {
    for (int r = 0; r < 10; ++r) hist.Observe(v);
  }
  EXPECT_EQ(hist.count(), 160u);
  EXPECT_NEAR(hist.Quantile(0.5), 7.0, 1.0);
  EXPECT_NEAR(hist.Quantile(1.0), 15.0, 1.0);
  EXPECT_NEAR(hist.Quantile(0.0), 0.0, 1.0);
}

TEST(ObsHistogram, BucketIndexBoundsAreConsistent) {
  // Every value maps into a bucket whose [lower, upper) range contains
  // it — spot-check across the full 64-bit span including the clamp.
  const uint64_t probes[] = {0,    1,    15,        16,        17,
                             100,  1023, 1024,      999999,    1u << 30,
                             ~0ull >> 1, ~0ull};
  for (const uint64_t v : probes) {
    const size_t idx = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets) << v;
    const auto [lo, hi] = LatencyHistogram::BucketBounds(idx);
    EXPECT_GE(v, lo) << "value " << v << " bucket " << idx;
    if (idx + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_LT(v, hi) << "value " << v << " bucket " << idx;
    }
  }
}

TEST(ObsHistogram, ResetClears) {
  LatencyHistogram hist;
  hist.Observe(123);
  hist.Observe(45678);
  ASSERT_EQ(hist.count(), 2u);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum_micros(), 0u);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// 2. Registry + export round-trip.

TEST(ObsRegistry, LookupOrCreateIsIdempotentAndStable) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.counter");
  Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  a->Increment(3);
  // Registering more instruments must not move the earlier ones.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler." + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("test.counter"), a);
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(registry.GetGauge("test.gauge"),
            registry.GetGauge("test.gauge"));
  EXPECT_EQ(registry.GetHistogram("test.hist"),
            registry.GetHistogram("test.hist"));
}

TEST(ObsRegistry, RenderTextIsPrometheusShaped) {
  MetricsRegistry registry;
  registry.GetCounter("cbix.test.queries")->Increment(42);
  registry.GetGauge("cbix.test.depth")->Set(-7);
  LatencyHistogram* hist = registry.GetHistogram("cbix.test.latency_us");
  hist->Observe(100);
  hist->Observe(200);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE cbix_test_queries counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cbix_test_queries 42"), std::string::npos) << text;
  EXPECT_NE(text.find("cbix_test_depth -7"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE cbix_test_latency_us histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cbix_test_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cbix_test_latency_us_sum 300"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cbix_test_latency_us_count 2"), std::string::npos)
      << text;
}

TEST(ObsRegistry, RenderJsonCarriesCountsAndQuantiles) {
  MetricsRegistry registry;
  registry.GetCounter("c.one")->Increment(5);
  registry.GetGauge("g.one")->Set(11);
  LatencyHistogram* hist = registry.GetHistogram("h.one");
  for (int i = 0; i < 100; ++i) hist->Observe(1000);

  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"c.one\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g.one\":11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.one\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999_us\""), std::string::npos) << json;
}

TEST(ObsRegistry, ResetAllZeroesButKeepsPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("r.c");
  LatencyHistogram* h = registry.GetHistogram("r.h");
  c->Increment(9);
  h->Observe(500);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(registry.GetCounter("r.c"), c);
}

// ---------------------------------------------------------------------------
// 3. Concurrency (TSan coverage: writers vs writers vs renderers).

TEST(ObsConcurrency, ConcurrentRecordingUnderLiveReaders) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("cc.counter");
  LatencyHistogram* hist = registry.GetHistogram("cc.hist");
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter->Increment();
        hist->Observe(static_cast<uint64_t>((w + 1) * 17 + i % 1000));
      }
    });
  }
  // Readers render and query quantiles while the writers are hot; the
  // snapshots must be tear-free (values sane), not exact.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const std::string text = registry.RenderText();
        EXPECT_NE(text.find("cc_counter"), std::string::npos);
        (void)registry.RenderJson();
        const double p50 = hist->Quantile(0.5);
        EXPECT_GE(p50, 0.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(hist->count(), static_cast<uint64_t>(kWriters) * kOpsPerWriter);
}

// ---------------------------------------------------------------------------
// 4. Stats exactness on the query path.

TEST(ObsStatsExactness, LinearScanEvalsEqualRowsAcrossShardsAndQuant) {
  constexpr size_t kRows = 300;
  constexpr size_t kDim = 16;
  constexpr size_t kQueries = 7;
  const std::vector<Vec> data = ClusteredData(kRows, kDim);
  const std::vector<Vec> queries = ClusteredData(kQueries, kDim, 77);

  struct Case {
    size_t shards;
    QuantizationKind quant;
  };
  const Case cases[] = {{1, QuantizationKind::kNone},
                        {3, QuantizationKind::kNone},
                        {1, QuantizationKind::kInt8},
                        {3, QuantizationKind::kInt8}};
  for (const Case& c : cases) {
    EngineConfig config;
    config.index_kind = IndexKind::kLinearScan;
    config.metric = MetricKind::kL2;
    config.shards = c.shards;
    config.quantization = c.quant;
    config.rerank_factor = 4;
    CbirEngine engine(FeatureExtractor(), config);
    for (size_t i = 0; i < kRows; ++i) {
      ASSERT_TRUE(
          engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
    }
    std::vector<SearchStats> stats;
    const auto got = engine.QueryKnnBatchByVectors(queries, 5, 2, &stats);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(stats.size(), kQueries);
    size_t total_primary = 0;
    for (const SearchStats& s : stats) {
      // A full scan touches every row exactly once per query — the
      // invariant distance_evals preserves now that rerank-stage exact
      // re-evaluations are accounted separately.
      EXPECT_EQ(s.distance_evals, kRows)
          << "shards=" << c.shards
          << " quant=" << static_cast<int>(c.quant);
      if (c.quant == QuantizationKind::kNone) {
        EXPECT_EQ(s.rerank_evals, 0u);
      } else {
        EXPECT_GT(s.rerank_evals, 0u);
        EXPECT_LT(s.rerank_evals, kRows);
      }
      total_primary += s.distance_evals;
    }
    EXPECT_EQ(total_primary, kRows * kQueries);
  }
}

// ---------------------------------------------------------------------------
// 5. Traces.

std::unique_ptr<ServingEngine> MakeServing(
    std::shared_ptr<MetricsRegistry> registry,
    std::shared_ptr<FaultInjector> injector, size_t shards,
    const std::vector<Vec>& data) {
  ServingOptions options;
  options.engine.index_kind = IndexKind::kLinearScan;
  options.engine.metric = MetricKind::kL2;
  options.engine.shards = shards;
  options.metrics = std::move(registry);
  options.fault_injector = std::move(injector);
  options.search_threads = 2;
  auto created = ServingEngine::Create(FeatureExtractor(), options);
  EXPECT_TRUE(created.ok());
  std::unique_ptr<ServingEngine> serve = std::move(created.value());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(serve->Insert(data[i], "v" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(serve->Flush().ok());
  return serve;
}

TEST(ObsTrace, SampledQueryCarriesFullSpanTree) {
  const std::vector<Vec> data = ClusteredData(200, 12);
  const std::vector<Vec> queries = ClusteredData(4, 12, 55);
  auto registry = std::make_shared<MetricsRegistry>();
  auto serve = MakeServing(registry, nullptr, 3, data);

  SearchOptions options;
  options.trace_every_n = 1;
  const auto reply = serve->Search(queries, 5, options);
  ASSERT_TRUE(reply.ok());
  ASSERT_NE(reply->trace, nullptr);

  const TraceSpan& root = reply->trace->root();
  EXPECT_EQ(root.name, "serve.search");
  EXPECT_DOUBLE_EQ(root.Attr("queries"), 4.0);
  EXPECT_GT(root.duration_ms, 0.0);

  const TraceSpan* engine_span = root.Find("engine.knn_batch");
  ASSERT_NE(engine_span, nullptr);
  EXPECT_DOUBLE_EQ(engine_span->Attr("shards"), 3.0);
  ASSERT_EQ(engine_span->children.size(), 3u);
  size_t evals = 0;
  for (const TraceSpan& shard : engine_span->children) {
    EXPECT_EQ(shard.name, "shard");
    EXPECT_TRUE(shard.status.empty()) << shard.status;
    evals += static_cast<size_t>(shard.Attr("distance_evals"));
  }
  // The shard spans account for the whole scan: 200 rows x 4 queries.
  EXPECT_EQ(evals, 200u * 4u);

  const std::string json = reply->trace->DumpJson();
  EXPECT_NE(json.find("\"serve.search\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"engine.knn_batch\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\""), std::string::npos) << json;
}

TEST(ObsTrace, FailedShardSpanCarriesStatus) {
  const std::vector<Vec> data = ClusteredData(150, 12);
  const std::vector<Vec> queries = ClusteredData(3, 12, 56);
  auto registry = std::make_shared<MetricsRegistry>();
  auto injector = std::make_shared<FaultInjector>();
  auto serve = MakeServing(registry, injector, 3, data);

  FaultInjector::ShardFault fault;
  fault.fail_probability = 1.0;
  injector->SetShardFault(1, fault);
  injector->Seed(99);
  injector->Enable(true);

  SearchOptions options;
  options.trace_every_n = 1;
  const auto reply = serve->Search(queries, 5, options);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->degraded);
  ASSERT_NE(reply->trace, nullptr);

  const TraceSpan* engine_span = reply->trace->root().Find("engine.knn_batch");
  ASSERT_NE(engine_span, nullptr);
  ASSERT_EQ(engine_span->children.size(), 3u);
  size_t failed = 0;
  for (const TraceSpan& shard : engine_span->children) {
    if (!shard.status.empty()) {
      ++failed;
      // The span records the injected Status, not a generic marker.
      EXPECT_NE(shard.status.find("injected"), std::string::npos)
          << shard.status;
    }
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_GT(engine_span->Attr("degraded_queries"), 0.0);
}

TEST(ObsTrace, SamplingEveryNAndNever) {
  const std::vector<Vec> data = ClusteredData(64, 8);
  const std::vector<Vec> queries = ClusteredData(2, 8, 57);
  auto registry = std::make_shared<MetricsRegistry>();
  auto serve = MakeServing(registry, nullptr, 1, data);

  // Default options: never sampled.
  const auto plain = serve->Search(queries, 3);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->trace, nullptr);

  // every-2nd: the sampler is a shared sequence counter, so across 4
  // calls exactly 2 are sampled.
  SearchOptions options;
  options.trace_every_n = 2;
  size_t sampled = 0;
  for (int i = 0; i < 4; ++i) {
    const auto reply = serve->Search(queries, 3, options);
    ASSERT_TRUE(reply.ok());
    sampled += reply->trace != nullptr;
  }
  EXPECT_EQ(sampled, 2u);
}

TEST(ObsTrace, SpanHelpers) {
  TraceSpan root;
  root.name = "a";
  root.AddAttr("x", 1.5);
  TraceSpan child;
  child.name = "b";
  child.status = "deadline exceeded";
  root.children.push_back(child);
  root.children.push_back(TraceSpan{});
  root.children[1].name = "c";

  EXPECT_DOUBLE_EQ(root.Attr("x"), 1.5);
  EXPECT_DOUBLE_EQ(root.Attr("missing", -2.0), -2.0);
  EXPECT_EQ(root.TreeSize(), 3u);
  const TraceSpan* b = root.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->status, "deadline exceeded");
  EXPECT_EQ(root.Find("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// 6. ServingEngine stats snapshot + registry agreement.

TEST(ObsServingStats, StatsSnapshotAndRenderTextRoundTrip) {
  const std::vector<Vec> data = ClusteredData(180, 12);
  const std::vector<Vec> queries = ClusteredData(6, 12, 58);
  auto registry = std::make_shared<MetricsRegistry>();
  auto injector = std::make_shared<FaultInjector>();
  auto serve = MakeServing(registry, injector, 3, data);

  // 3 healthy batches, then kill a shard and run 2 degraded batches.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(serve->Search(queries, 5).ok());
  }
  FaultInjector::ShardFault fault;
  fault.fail_probability = 1.0;
  injector->SetShardFault(0, fault);
  injector->Seed(7);
  injector->Enable(true);
  for (int i = 0; i < 2; ++i) {
    const auto reply = serve->Search(queries, 5);
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply->degraded);
  }

  const ServingEngine::Stats stats = serve->StatsSnapshot();
  EXPECT_EQ(stats.queries_served, 5u * queries.size());
  EXPECT_EQ(stats.degraded_queries, 2u * queries.size());
  EXPECT_DOUBLE_EQ(stats.degraded_fraction, 2.0 / 5.0);
  EXPECT_EQ(stats.inserts, data.size());
  EXPECT_EQ(stats.sealed_count + stats.delta_count, data.size());
  EXPECT_GT(stats.snapshot_version, 0u);
  EXPECT_GT(stats.snapshot_swaps, 0u);
  EXPECT_EQ(stats.snapshot_version, serve->snapshot_info().version);

  // The registry's counters tell the same story as the snapshot, and
  // the text export carries them verbatim.
  EXPECT_EQ(registry->GetCounter("cbix.serve.queries")->value(),
            stats.queries_served);
  EXPECT_EQ(registry->GetCounter("cbix.serve.degraded_queries")->value(),
            stats.degraded_queries);
  const std::string text = registry->RenderText();
  EXPECT_NE(text.find("cbix_serve_queries " +
                      std::to_string(stats.queries_served)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cbix_serve_degraded_queries " +
                      std::to_string(stats.degraded_queries)),
            std::string::npos)
      << text;
  // Per-stage latency histograms recorded once per Search call.
  EXPECT_EQ(registry->GetHistogram("cbix.serve.search_us")->count(), 5u);
  EXPECT_NE(text.find("cbix_serve_search_us_count 5"), std::string::npos)
      << text;
  // Engine-stage counters flow into the same registry via the sealed
  // engines: 5 batches x 6 queries x 180 rows of primary-stage evals,
  // minus the rows on shards that never answered — so bounded, not
  // exact, under the dead shard.
  const uint64_t engine_evals =
      registry->GetCounter("cbix.engine.distance_evals")->value();
  EXPECT_GT(engine_evals, 0u);
  EXPECT_LE(engine_evals, 5u * queries.size() * data.size());
}

TEST(ObsServingStats, DisabledRegistryRecordsNothing) {
  const std::vector<Vec> data = ClusteredData(64, 8);
  const std::vector<Vec> queries = ClusteredData(2, 8, 59);
  auto registry = std::make_shared<MetricsRegistry>();
  registry->set_enabled(false);
  auto serve = MakeServing(registry, nullptr, 1, data);

  ASSERT_TRUE(serve->Search(queries, 3).ok());
  EXPECT_EQ(registry->GetCounter("cbix.serve.queries")->value(), 0u);
  EXPECT_EQ(registry->GetHistogram("cbix.serve.search_us")->count(), 0u);
  EXPECT_EQ(registry->GetCounter("cbix.engine.distance_evals")->value(), 0u);
  // StatsSnapshot still works — it reads the engine's own atomics, not
  // the registry.
  EXPECT_EQ(serve->StatsSnapshot().queries_served, queries.size());
}

// ---------------------------------------------------------------------------
// 7. Slow-query log.

std::shared_ptr<const QueryTrace> TraceNamed(const std::string& name) {
  auto trace = std::make_shared<QueryTrace>();
  trace->root().name = name;
  return trace;
}

TEST(ObsSlowQueryLog, KeepsTopNSlowestInOrder) {
  SlowQueryLog log(3);
  log.Offer(5.0, TraceNamed("q5"));
  log.Offer(1.0, TraceNamed("q1"));
  log.Offer(9.0, TraceNamed("q9"));
  ASSERT_EQ(log.size(), 3u);
  log.Offer(2.0, TraceNamed("q2"));  // slower than q1: evicts it
  log.Offer(7.0, TraceNamed("q7"));  // evicts q2
  log.Offer(0.5, TraceNamed("q05"));  // too fast: dropped

  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_DOUBLE_EQ(entries[0].latency_ms, 9.0);
  EXPECT_DOUBLE_EQ(entries[1].latency_ms, 7.0);
  EXPECT_DOUBLE_EQ(entries[2].latency_ms, 5.0);
  EXPECT_EQ(entries[0].trace->root().name, "q9");

  const std::string json = log.DumpJson();
  EXPECT_NE(json.find("\"latency_ms\":9"), std::string::npos) << json;
  EXPECT_LT(json.find("\"q9\""), json.find("\"q7\"")) << json;

  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(ObsSlowQueryLog, ServingFeedsSampledTraces) {
  const std::vector<Vec> data = ClusteredData(64, 8);
  const std::vector<Vec> queries = ClusteredData(2, 8, 60);
  auto registry = std::make_shared<MetricsRegistry>();
  auto serve = MakeServing(registry, nullptr, 1, data);

  SearchOptions options;
  options.trace_every_n = 1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(serve->Search(queries, 3, options).ok());
  }
  const auto& log = serve->slow_query_log();
  EXPECT_EQ(log.size(), 5u);  // capacity default 16: all retained
  for (const auto& entry : log.Entries()) {
    ASSERT_NE(entry.trace, nullptr);
    EXPECT_EQ(entry.trace->root().name, "serve.search");
  }
}

}  // namespace
}  // namespace cbix
