#include "image/wavelet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace cbix {
namespace {

ImageF RandomImage(int w, int h, uint64_t seed) {
  Rng rng(seed);
  ImageF img(w, h, 1);
  for (auto& v : img.data()) v = static_cast<float>(rng.NextDouble());
  return img;
}

double TotalEnergy(const ImageF& img) {
  double sum = 0;
  for (float v : img.data()) sum += static_cast<double>(v) * v;
  return sum;
}

TEST(HaarTest, SubbandShapes) {
  const ImageF img = RandomImage(16, 8, 1);
  const HaarSubbands s = HaarDecompose(img);
  EXPECT_EQ(s.ll.width(), 8);
  EXPECT_EQ(s.ll.height(), 4);
  EXPECT_EQ(s.hh.width(), 8);
  EXPECT_EQ(s.hh.height(), 4);
}

TEST(HaarTest, PerfectReconstruction) {
  const ImageF img = RandomImage(32, 32, 2);
  const ImageF rec = HaarReconstruct(HaarDecompose(img));
  ASSERT_TRUE(rec.SameShape(img));
  for (size_t i = 0; i < img.data().size(); ++i) {
    EXPECT_NEAR(rec.data()[i], img.data()[i], 1e-5);
  }
}

TEST(HaarTest, EnergyConservation) {
  // Orthonormal transform: total energy of subbands == input energy.
  const ImageF img = RandomImage(16, 16, 3);
  const HaarSubbands s = HaarDecompose(img);
  const double sub_energy = TotalEnergy(s.ll) + TotalEnergy(s.lh) +
                            TotalEnergy(s.hl) + TotalEnergy(s.hh);
  EXPECT_NEAR(sub_energy, TotalEnergy(img), 1e-3);
}

TEST(HaarTest, ConstantImageHasNoDetail) {
  ImageF img(8, 8, 1, 0.5f);
  const HaarSubbands s = HaarDecompose(img);
  for (float v : s.lh.data()) EXPECT_NEAR(v, 0.0f, 1e-6);
  for (float v : s.hl.data()) EXPECT_NEAR(v, 0.0f, 1e-6);
  for (float v : s.hh.data()) EXPECT_NEAR(v, 0.0f, 1e-6);
  // LL of a constant c is 2c per level (orthonormal scaling).
  for (float v : s.ll.data()) EXPECT_NEAR(v, 1.0f, 1e-6);
}

TEST(HaarTest, VerticalStripesExciteHlBand) {
  // Alternating columns: pure horizontal high frequency -> HL (high-pass
  // rows) carries the detail; LH stays silent.
  ImageF img(16, 16, 1);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) img.at(x, y) = (x % 2 == 0) ? 1.0f : 0.0f;
  }
  const HaarSubbands s = HaarDecompose(img);
  EXPECT_GT(BandEnergy(s.hl), 0.4f);
  EXPECT_NEAR(BandEnergy(s.lh), 0.0f, 1e-5);
  EXPECT_NEAR(BandEnergy(s.hh), 0.0f, 1e-5);
}

TEST(HaarTest, HorizontalStripesExciteLhBand) {
  ImageF img(16, 16, 1);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) img.at(x, y) = (y % 2 == 0) ? 1.0f : 0.0f;
  }
  const HaarSubbands s = HaarDecompose(img);
  EXPECT_GT(BandEnergy(s.lh), 0.4f);
  EXPECT_NEAR(BandEnergy(s.hl), 0.0f, 1e-5);
}

TEST(HaarPyramidTest, MultiLevelReconstruction) {
  const ImageF img = RandomImage(32, 32, 4);
  HaarPyramid pyramid = HaarDecomposeLevels(img, 3);
  EXPECT_EQ(pyramid.levels.size(), 3u);
  EXPECT_EQ(pyramid.approx.width(), 4);
  // Reconstruct bottom-up.
  ImageF current = pyramid.approx;
  for (int k = 2; k >= 0; --k) {
    HaarSubbands bands = pyramid.levels[k];
    bands.ll = current;
    current = HaarReconstruct(bands);
  }
  ASSERT_TRUE(current.SameShape(img));
  for (size_t i = 0; i < img.data().size(); ++i) {
    EXPECT_NEAR(current.data()[i], img.data()[i], 1e-4);
  }
}

TEST(HaarPyramidTest, EnergyConservedAcrossLevels) {
  const ImageF img = RandomImage(32, 32, 5);
  const HaarPyramid pyramid = HaarDecomposeLevels(img, 3);
  double total = TotalEnergy(pyramid.approx);
  for (const auto& level : pyramid.levels) {
    total += TotalEnergy(level.lh) + TotalEnergy(level.hl) +
             TotalEnergy(level.hh);
  }
  EXPECT_NEAR(total, TotalEnergy(img), 1e-2);
}

TEST(MaxHaarLevelsTest, PowersOfTwo) {
  EXPECT_EQ(MaxHaarLevels(64, 64), 6);
  EXPECT_EQ(MaxHaarLevels(64, 32), 5);
  EXPECT_EQ(MaxHaarLevels(48, 48), 4);  // 48 = 16*3: 4 halvings stay even
  EXPECT_EQ(MaxHaarLevels(3, 64), 0);
  EXPECT_EQ(MaxHaarLevels(1, 1), 0);
}

TEST(BandEnergyTest, KnownValue) {
  ImageF img(2, 2, 1);
  img.at(0, 0) = 3.0f;
  img.at(1, 0) = 4.0f;
  // RMS of {3,4,0,0} = sqrt(25/4) = 2.5.
  EXPECT_NEAR(BandEnergy(img), 2.5f, 1e-6);
}

}  // namespace
}  // namespace cbix
