// Equivalence suite for the batched distance kernels: every batched
// form (raw, contiguous, gather, rank-key) must reproduce a naive
// scalar double-accumulating reference within 1e-6, across odd
// dimensions and degenerate corpora, and the blocked top-k scan must
// reproduce the scalar reference ranking exactly (same ids).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "corpus/corpus.h"
#include "distance/batch_kernels.h"
#include "distance/histogram_measures.h"
#include "distance/metric.h"
#include "distance/minkowski.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "util/feature_matrix.h"
#include "util/random.h"

namespace cbix {
namespace {

// ---------------------------------------------------------------------------
// Naive scalar references (sequential accumulation, mirroring the seed
// implementations — deliberately independent of the kernel code).

double RefL1(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += std::fabs(static_cast<double>(a[i]) - b[i]);
  }
  return s;
}

double RefL2(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double RefLInf(const Vec& a, const Vec& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
  }
  return m;
}

double RefHistIntersect(const Vec& a, const Vec& b) {
  double inter = 0.0, ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    inter += std::min(a[i], b[i]);
    ma += a[i];
    mb += b[i];
  }
  const double norm = std::min(ma, mb);
  if (norm <= 0.0) return ma == mb ? 0.0 : 1.0;
  return 1.0 - inter / norm;
}

double RefChiSquare(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double sum = static_cast<double>(a[i]) + b[i];
    if (sum <= 0.0) continue;
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d / sum;
  }
  return 0.5 * s;
}

double RefHellinger(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = std::sqrt(std::max(0.0f, a[i])) -
                     std::sqrt(std::max(0.0f, b[i]));
    s += d * d;
  }
  return std::sqrt(s / 2.0);
}

double RefCosine(const Vec& a, const Vec& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return na == nb ? 0.0 : 1.0;
  return 1.0 - std::clamp(dot / std::sqrt(na * nb), -1.0, 1.0);
}

double RefCanberra(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double den = std::fabs(a[i]) + std::fabs(b[i]);
    if (den <= 0.0) continue;
    s += std::fabs(static_cast<double>(a[i]) - b[i]) / den;
  }
  return s;
}

using RefFn = double (*)(const Vec&, const Vec&);

struct KernelCase {
  std::string name;
  std::shared_ptr<const DistanceMetric> metric;
  RefFn reference;
};

std::vector<KernelCase> AllKernelCases() {
  return {
      {"l1", MakeMetric(MetricKind::kL1), RefL1},
      {"l2", MakeMetric(MetricKind::kL2), RefL2},
      {"linf", MakeMetric(MetricKind::kLInf), RefLInf},
      {"hist_intersect", MakeMetric(MetricKind::kHistogramIntersection),
       RefHistIntersect},
      {"chi_square", MakeMetric(MetricKind::kChiSquare), RefChiSquare},
      {"hellinger", MakeMetric(MetricKind::kHellinger), RefHellinger},
      {"cosine", MakeMetric(MetricKind::kCosine), RefCosine},
      {"canberra", std::make_shared<CanberraDistance>(), RefCanberra},
  };
}

/// Random non-negative vectors (histogram-like, valid for every
/// measure), with occasional exact zeros to hit the zero-mass branches.
std::vector<Vec> RandomRows(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> rows;
  rows.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    Vec v(dim);
    for (auto& x : v) {
      const double u = rng.NextDouble();
      x = u < 0.1 ? 0.0f : static_cast<float>(u);
    }
    rows.push_back(std::move(v));
  }
  return rows;
}

class BatchKernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(BatchKernelEquivalence, AllFormsMatchScalarReference) {
  const KernelCase& param = GetParam();
  const DistanceMetric& metric = *param.metric;

  for (size_t dim : {1u, 7u, 33u, 257u}) {
    for (size_t count : {0u, 1u, 100u}) {
      const std::vector<Vec> rows = RandomRows(count, dim, 17 * dim + count);
      const FeatureMatrix matrix = FeatureMatrix::FromVectors(rows);
      const Vec q = RandomRows(1, dim, 999 + dim)[0];

      std::vector<double> batched(count, -1.0);
      metric.DistanceBatch(q.data(), matrix.data(), matrix.stride(), count,
                           dim, batched.data());

      std::vector<const float*> ptrs(count);
      for (size_t i = 0; i < count; ++i) ptrs[i] = matrix.row(i);
      std::vector<double> gathered(count, -1.0);
      metric.DistanceBatch(q.data(), ptrs.data(), count, dim,
                           gathered.data());

      std::vector<double> keys(count, -1.0);
      metric.RankBatch(q.data(), matrix.data(), matrix.stride(), count, dim,
                       keys.data());

      for (size_t i = 0; i < count; ++i) {
        const double want = param.reference(q, rows[i]);
        EXPECT_NEAR(metric.Distance(q, rows[i]), want, 1e-6)
            << param.name << " Distance dim=" << dim << " i=" << i;
        EXPECT_NEAR(metric.DistanceRaw(q.data(), matrix.row(i), dim), want,
                    1e-6)
            << param.name << " DistanceRaw dim=" << dim << " i=" << i;
        EXPECT_NEAR(batched[i], want, 1e-6)
            << param.name << " DistanceBatch dim=" << dim << " i=" << i;
        EXPECT_NEAR(gathered[i], want, 1e-6)
            << param.name << " gather dim=" << dim << " i=" << i;
        // Rank keys are a monotone transform; converting back must give
        // the distance, and the inverse must give the key back.
        EXPECT_NEAR(metric.RankToDistance(keys[i]), want, 1e-6)
            << param.name << " RankToDistance dim=" << dim << " i=" << i;
        EXPECT_NEAR(metric.DistanceToRank(metric.RankToDistance(keys[i])),
                    keys[i], 1e-6 + keys[i] * 1e-9)
            << param.name << " DistanceToRank dim=" << dim << " i=" << i;
      }
    }
  }
}

TEST_P(BatchKernelEquivalence, SelfDistanceIsZeroOnDuplicates) {
  const KernelCase& param = GetParam();
  const Vec v = RandomRows(1, 33, 5)[0];
  EXPECT_NEAR(param.metric->DistanceRaw(v.data(), v.data(), v.size()), 0.0,
              1e-9)
      << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, BatchKernelEquivalence,
    ::testing::ValuesIn(AllKernelCases()),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Kernel-level checks of the multi-lane divide/sqrt-bound kernels
// (chi-square, hellinger) and the register-tiled pair kernels: lane
// widening may only change summation order (scalar-reference
// agreement), pair tiling may change nothing at all (bit-identity to
// the single-query kernels).

TEST(MultiLaneKernels, ChiSquareAndHellingerMatchScalarAcrossDims) {
  for (size_t dim = 0; dim <= 40; ++dim) {
    const std::vector<Vec> rows = RandomRows(2, dim == 0 ? 1 : dim, dim + 3);
    const float* a = rows[0].data();
    const float* b = rows[1].data();
    double chi_ref = 0.0, hel_ref = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double sum = static_cast<double>(a[i]) + b[i];
      if (sum > 0.0) {
        const double d = static_cast<double>(a[i]) - b[i];
        chi_ref += d * d / sum;
      }
      const double h = std::sqrt(std::max(0.0f, a[i])) -
                       std::sqrt(std::max(0.0f, b[i]));
      hel_ref += h * h;
    }
    chi_ref *= 0.5;
    EXPECT_NEAR(kernels::ChiSquare(a, b, dim), chi_ref, 1e-9) << dim;
    EXPECT_NEAR(kernels::HellingerSquaredSum(a, b, dim), hel_ref, 1e-9)
        << dim;
  }
}

TEST(MultiLaneKernels, LInfMatchesScalarAcrossDims) {
  // max is associative and commutative, so the 8-lane kernel must be
  // *bit-identical* to the sequential reference on every dimension
  // (all lane-count remainders 0..7 plus multi-pass lengths).
  for (size_t dim = 0; dim <= 40; ++dim) {
    const std::vector<Vec> rows = RandomRows(2, dim == 0 ? 1 : dim, dim + 7);
    const float* a = rows[0].data();
    const float* b = rows[1].data();
    double ref = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      ref = std::max(ref, std::fabs(static_cast<double>(a[i]) - b[i]));
    }
    EXPECT_EQ(kernels::LInf(a, b, dim), ref) << dim;
  }
}

TEST(TiledKernels, BitIdenticalToSingleQueryKernels) {
  for (size_t dim : {1u, 7u, 8u, 9u, 16u, 33u, 257u}) {
    const std::vector<Vec> rows = RandomRows(3, dim, 17 * dim);
    const float* qa = rows[0].data();
    const float* qb = rows[1].data();
    const float* r = rows[2].data();

    // Operand widening is exact, so the convert-free kernel must
    // reproduce the float kernel bit for bit.
    std::vector<double> qa_wide(qa, qa + dim), r_wide(r, r + dim);
    EXPECT_EQ(kernels::L2SquaredWide(qa_wide.data(), r_wide.data(), dim),
              kernels::L2Squared(qa, r, dim))
        << dim;

    double dot_a = -1.0, dot_b = -1.0, norm_pair = -1.0;
    kernels::DotPairAndNormSq(qa, qb, r, dim, &dot_a, &dot_b, &norm_pair);
    double dot_ref = 0.0, norm_ref = 0.0;
    kernels::DotAndNormSq(qa, r, dim, &dot_ref, &norm_ref);
    EXPECT_EQ(dot_a, dot_ref) << dim;
    EXPECT_EQ(norm_pair, norm_ref) << dim;
    kernels::DotAndNormSq(qb, r, dim, &dot_ref, &norm_ref);
    EXPECT_EQ(dot_b, dot_ref) << dim;
    EXPECT_EQ(norm_pair, norm_ref) << dim;
  }
}

// ---------------------------------------------------------------------------
// Ranking equivalence: the blocked kernel scan must produce the same
// ids as a scalar-reference top-k / range scan (ties broken by id).

class BatchRankingEquivalence : public ::testing::TestWithParam<KernelCase> {
};

TEST_P(BatchRankingEquivalence, BlockedTopKMatchesScalarReference) {
  const KernelCase& param = GetParam();
  for (size_t dim : {1u, 7u, 33u, 257u}) {
    std::vector<Vec> rows = RandomRows(700, dim, 31 * dim);
    // Duplicated rows exercise the (distance, id) tie-break.
    for (int d = 0; d < 20; ++d) rows.push_back(rows[d * 7]);

    LinearScanIndex index(param.metric);
    ASSERT_TRUE(index.Build(rows).ok());
    const Vec q = RandomRows(1, dim, 4242 + dim)[0];

    // Scalar reference ranking over reference distances.
    std::vector<Neighbor> all;
    all.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      all.push_back({static_cast<uint32_t>(i), param.reference(q, rows[i])});
    }
    std::sort(all.begin(), all.end());

    for (size_t k : {1u, 10u, 64u}) {
      const auto got = KnnSearch(index, q, k);
      ASSERT_EQ(got.size(), std::min(k, rows.size()))
          << param.name << " dim=" << dim;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, all[i].id)
            << param.name << " dim=" << dim << " k=" << k << " i=" << i;
        EXPECT_NEAR(got[i].distance, all[i].distance, 1e-6);
      }
    }

    // Range query at the 25th distance. The radius is nudged by one
    // part in 1e9 so membership does not hinge on the last ulp of two
    // different (reference vs kernel) summation orders; ties at the
    // boundary (duplicated rows) land inside for both.
    const double radius = all[25].distance * (1.0 + 1e-9);
    const auto got = RangeSearch(index, q, radius);
    std::vector<Neighbor> want;
    for (const Neighbor& n : all) {
      if (n.distance <= radius) want.push_back(n);
    }
    ASSERT_EQ(got.size(), want.size()) << param.name << " dim=" << dim;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << param.name << " dim=" << dim;
      EXPECT_NEAR(got[i].distance, want[i].distance, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, BatchRankingEquivalence,
    ::testing::ValuesIn(AllKernelCases()),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// VP-tree leaf scans go through the gather kernels; results must stay
// identical to the linear scan for metric measures.

TEST(VpTreeBatchedLeafTest, MatchesLinearScanOnMetricMeasures) {
  for (MetricKind kind :
       {MetricKind::kL1, MetricKind::kL2, MetricKind::kHellinger}) {
    const auto metric = MakeMetric(kind);
    const std::vector<Vec> rows = RandomRows(500, 19, 77);

    LinearScanIndex reference(metric);
    ASSERT_TRUE(reference.Build(rows).ok());
    VpTree tree(metric);
    ASSERT_TRUE(tree.Build(rows).ok());

    for (uint64_t seed = 0; seed < 5; ++seed) {
      const Vec q = RandomRows(1, 19, 1000 + seed)[0];
      const auto want = KnnSearch(reference, q, 15);
      const auto got = KnnSearch(tree, q, 15);
      ASSERT_EQ(got.size(), want.size()) << MetricKindName(kind);
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id) << MetricKindName(kind);
        EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// QueryKnnBatch must be deterministic and identical to sequential
// QueryKnn, for any thread count.

TEST(QueryKnnBatchTest, MatchesSequentialQueries) {
  auto extractor = MakeSingleDescriptorExtractor("color_hist", 64);
  ASSERT_TRUE(extractor.ok());
  CorpusSpec spec;
  spec.num_classes = 4;
  spec.images_per_class = 5;
  spec.width = spec.height = 48;
  const auto corpus = CorpusGenerator(spec).Generate();

  CbirEngine engine(extractor.value());
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }

  std::vector<ImageU8> queries;
  for (size_t i = 0; i < corpus.size(); i += 2) {
    queries.push_back(corpus[i].image);
  }

  for (size_t num_threads : {1u, 4u}) {
    std::vector<SearchStats> stats;
    const auto batch = engine.QueryKnnBatch(queries, 5, num_threads, &stats);
    ASSERT_TRUE(batch.ok()) << num_threads << " threads";
    ASSERT_EQ(batch->size(), queries.size());
    ASSERT_EQ(stats.size(), queries.size());

    for (size_t i = 0; i < queries.size(); ++i) {
      const auto sequential = engine.QueryKnn(queries[i], 5);
      ASSERT_TRUE(sequential.ok());
      ASSERT_EQ(batch->at(i).size(), sequential->size());
      for (size_t j = 0; j < sequential->size(); ++j) {
        EXPECT_EQ(batch->at(i)[j].id, sequential->at(j).id);
        EXPECT_EQ(batch->at(i)[j].distance, sequential->at(j).distance);
        EXPECT_EQ(batch->at(i)[j].name, sequential->at(j).name);
      }
      EXPECT_GT(stats[i].distance_evals, 0u);
    }
  }
}

TEST(QueryKnnBatchTest, ByVectorsMatchesSequentialAndHandlesEmpty) {
  auto extractor = MakeSingleDescriptorExtractor("color_hist", 64);
  ASSERT_TRUE(extractor.ok());
  CbirEngine engine(extractor.value());

  // Empty store: positional empty results.
  const auto empty = engine.QueryKnnBatchByVectors({Vec{1.0f}}, 3);
  ASSERT_TRUE(empty.ok());
  ASSERT_EQ(empty->size(), 1u);
  EXPECT_TRUE(empty->at(0).empty());

  CorpusSpec spec;
  spec.num_classes = 3;
  spec.images_per_class = 4;
  spec.width = spec.height = 48;
  const auto corpus = CorpusGenerator(spec).Generate();
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }

  std::vector<Vec> queries;
  for (const auto& item : corpus) {
    queries.push_back(engine.ExtractFeatures(item.image));
  }

  const auto batch = engine.QueryKnnBatchByVectors(queries, 4, 3);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto sequential = engine.QueryKnnByVector(queries[i], 4);
    ASSERT_TRUE(sequential.ok());
    ASSERT_EQ(batch->at(i).size(), sequential->size());
    for (size_t j = 0; j < sequential->size(); ++j) {
      EXPECT_EQ(batch->at(i)[j].id, sequential->at(j).id);
      EXPECT_EQ(batch->at(i)[j].distance, sequential->at(j).distance);
    }
  }

  // Dimension mismatch is rejected.
  const auto bad = engine.QueryKnnBatchByVectors({Vec{1.0f, 2.0f}}, 3);
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace cbix
