#include "image/draw.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cbix {
namespace {

TEST(DrawTest, PutPixelRgbAndGray) {
  ImageF rgb(4, 4, 3);
  PutPixel(&rgb, 1, 2, {0.2f, 0.4f, 0.6f});
  EXPECT_EQ(rgb.at(1, 2, 0), 0.2f);
  EXPECT_EQ(rgb.at(1, 2, 1), 0.4f);
  EXPECT_EQ(rgb.at(1, 2, 2), 0.6f);

  ImageF gray(4, 4, 1);
  PutPixel(&gray, 0, 0, {1.0f, 1.0f, 1.0f});
  EXPECT_NEAR(gray.at(0, 0), 1.0f, 1e-6);
}

TEST(DrawTest, PutPixelIgnoresOutOfBounds) {
  ImageF img(2, 2, 3);
  PutPixel(&img, -1, 0, {1, 1, 1});
  PutPixel(&img, 5, 5, {1, 1, 1});
  for (float v : img.data()) EXPECT_EQ(v, 0.0f);
}

TEST(DrawTest, FillRectClipsAndFills) {
  ImageF img(8, 8, 3);
  FillRect(&img, -2, -2, 3, 3, {1, 0, 0});
  EXPECT_EQ(img.at(0, 0, 0), 1.0f);
  EXPECT_EQ(img.at(2, 2, 0), 1.0f);
  EXPECT_EQ(img.at(3, 3, 0), 0.0f);  // [x0, x1) exclusive
}

TEST(DrawTest, FillCircleAreaApproximatesPiR2) {
  ImageF img(64, 64, 1);
  FillCircle(&img, 32, 32, 10, {1, 1, 1});
  int count = 0;
  for (float v : img.data()) count += v > 0.5f;
  EXPECT_NEAR(count, M_PI * 100.0, 20.0);
}

TEST(DrawTest, FillCircleStaysInBoundingBox) {
  ImageF img(64, 64, 1);
  FillCircle(&img, 32, 32, 10, {1, 1, 1});
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (img.at(x, y) > 0.5f) {
        const float d = std::hypot(x - 32.0f, y - 32.0f);
        EXPECT_LE(d, 10.6f);
      }
    }
  }
}

TEST(DrawTest, FillEllipseRespectsSemiAxes) {
  ImageF img(64, 64, 1);
  FillEllipse(&img, 32, 32, 20, 5, {1, 1, 1});
  EXPECT_GT(img.at(48, 32), 0.5f);  // inside along x
  EXPECT_EQ(img.at(32, 48), 0.0f);  // outside along y
}

TEST(DrawTest, FillPolygonTriangle) {
  ImageF img(32, 32, 1);
  FillPolygon(&img, {{4, 4}, {28, 4}, {16, 28}}, {1, 1, 1});
  EXPECT_GT(img.at(16, 10), 0.5f);  // interior
  EXPECT_EQ(img.at(2, 30), 0.0f);   // exterior
  EXPECT_EQ(img.at(30, 30), 0.0f);
}

TEST(DrawTest, FillPolygonConcave) {
  // A "U" shape: the notch must stay unfilled.
  ImageF img(40, 40, 1);
  FillPolygon(&img,
              {{5, 5}, {35, 5}, {35, 35}, {25, 35}, {25, 15},
               {15, 15}, {15, 35}, {5, 35}},
              {1, 1, 1});
  EXPECT_GT(img.at(10, 30), 0.5f);  // left leg
  EXPECT_GT(img.at(30, 30), 0.5f);  // right leg
  EXPECT_EQ(img.at(20, 30), 0.0f);  // notch
  EXPECT_GT(img.at(20, 10), 0.5f);  // bridge
}

TEST(DrawTest, PolygonNeedsThreeVertices) {
  ImageF img(8, 8, 1);
  FillPolygon(&img, {{1, 1}, {5, 5}}, {1, 1, 1});
  for (float v : img.data()) EXPECT_EQ(v, 0.0f);
}

TEST(DrawTest, DrawLineEndpointsAndConnectivity) {
  ImageF img(16, 16, 1);
  DrawLine(&img, 2, 3, 12, 9, {1, 1, 1});
  EXPECT_GT(img.at(2, 3), 0.5f);
  EXPECT_GT(img.at(12, 9), 0.5f);
  int count = 0;
  for (float v : img.data()) count += v > 0.5f;
  EXPECT_GE(count, 11);  // at least max(dx, dy) + 1 pixels
}

TEST(DrawTest, GradientEndsMatchColors) {
  ImageF img(10, 4, 3);
  FillLinearGradient(&img, {0, 0, 0}, {1, 1, 1}, /*horizontal=*/true);
  EXPECT_NEAR(img.at(0, 0, 0), 0.0f, 1e-6);
  EXPECT_NEAR(img.at(9, 0, 0), 1.0f, 1e-6);
  EXPECT_GT(img.at(5, 0, 0), img.at(2, 0, 0));
}

TEST(ValueNoiseTest, DeterministicAndInRange) {
  const ImageF a = ValueNoise(32, 32, 8.0f, 3, 42);
  const ImageF b = ValueNoise(32, 32, 8.0f, 3, 42);
  EXPECT_EQ(a, b);
  for (float v : a.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(ValueNoiseTest, DifferentSeedsDiffer) {
  const ImageF a = ValueNoise(32, 32, 8.0f, 3, 1);
  const ImageF b = ValueNoise(32, 32, 8.0f, 3, 2);
  EXPECT_NE(a, b);
}

TEST(ValueNoiseTest, LargerScaleIsSmoother) {
  auto roughness = [](const ImageF& img) {
    double acc = 0;
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 1; x < img.width(); ++x) {
        acc += std::fabs(img.at(x, y) - img.at(x - 1, y));
      }
    }
    return acc;
  };
  const ImageF fine = ValueNoise(64, 64, 4.0f, 1, 7);
  const ImageF coarse = ValueNoise(64, 64, 32.0f, 1, 7);
  EXPECT_GT(roughness(fine), roughness(coarse) * 2);
}

}  // namespace
}  // namespace cbix
