// ASSERT_OK / EXPECT_OK — the one sanctioned way for tests to consume
// a [[nodiscard]] Status they expect to succeed. A failure prints the
// full status (code + message) instead of a bare "x.ok() is false",
// and the Status is genuinely inspected — never cast to void, so a
// regression in a fallible call can't slip through as a discarded
// return (the invariant -Werror=unused-result enforces everywhere).

#ifndef CBIX_TESTS_STATUS_MATCHERS_H_
#define CBIX_TESTS_STATUS_MATCHERS_H_

#include <gtest/gtest.h>

#include "util/status.h"

namespace cbix {

inline ::testing::AssertionResult IsOkStatus(const Status& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << "status: " << status.ToString();
}

}  // namespace cbix

#define ASSERT_OK(expr) ASSERT_TRUE(::cbix::IsOkStatus((expr)))
#define EXPECT_OK(expr) EXPECT_TRUE(::cbix::IsOkStatus((expr)))

#endif  // CBIX_TESTS_STATUS_MATCHERS_H_
