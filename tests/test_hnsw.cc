// HnswIndex unit suite: the approximate-search contract. Recall
// against an exact linear scan, exact distances for every returned
// id, bit-identical batched search, seeded-deterministic construction
// (byte-equal Serialize across rebuilds), the exact RangeSearch
// fallback, cancellation clearing, quantized traversal with exact
// rerank, the AttachRows seam, and a targeted corrupt-graph corpus
// against Deserialize (every mutation a non-OK Status, never UB).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "corpus/vector_workload.h"
#include "index/hnsw.h"
#include "index/linear_scan.h"
#include "index/query_block.h"
#include "util/random.h"
#include "util/serialize.h"

namespace cbix {
namespace {

std::vector<Vec> ClusteredData(size_t n, size_t dim, uint64_t seed = 33) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = n;
  spec.dim = dim;
  spec.seed = seed;
  return GenerateVectors(spec);
}

std::vector<Vec> PerturbedQueries(const std::vector<Vec>& data, size_t count,
                                  uint64_t seed = 99) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = data.size();
  spec.dim = data.empty() ? 0 : data[0].size();
  spec.seed = 33;
  return GenerateQueries(spec, data, QueryMode::kPerturbedData, count,
                         /*perturb_sigma=*/0.02, seed);
}

/// Fraction of exact top-k ids the approximate result recovered,
/// averaged over queries.
double RecallAtK(const VectorIndex& approx, const VectorIndex& exact,
                 const std::vector<Vec>& queries, size_t k) {
  size_t hit = 0, want = 0;
  for (const Vec& q : queries) {
    const auto truth = KnnSearch(exact, q, k);
    const auto got = KnnSearch(approx, q, k);
    std::set<uint32_t> truth_ids;
    for (const Neighbor& n : truth) truth_ids.insert(n.id);
    for (const Neighbor& n : got) hit += truth_ids.count(n.id);
    want += truth.size();
  }
  return want == 0 ? 1.0 : static_cast<double>(hit) / want;
}

TEST(Hnsw, RecallAndExactDistancesVsLinearScan) {
  const auto data = ClusteredData(2000, 32);
  const auto queries = PerturbedQueries(data, 50);

  HnswOptions options;
  options.m = 16;
  options.ef_construction = 100;
  options.ef_search = 64;
  HnswIndex hnsw(MakeMetric(MetricKind::kL2), options);
  ASSERT_TRUE(hnsw.Build(data).ok());
  LinearScanIndex scan(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(scan.Build(data).ok());

  EXPECT_GE(RecallAtK(hnsw, scan, queries, 10), 0.95);

  // Approximate WHICH ids come back, exact WHAT distance each has:
  // every returned (id, distance) must be exactly the linear scan's
  // distance for that id.
  const auto scan_all = KnnSearch(scan, queries[0], data.size());
  std::vector<double> exact_by_id(data.size());
  for (const Neighbor& n : scan_all) exact_by_id[n.id] = n.distance;
  const auto got = KnnSearch(hnsw, queries[0], 10);
  ASSERT_EQ(got.size(), 10u);
  for (const Neighbor& n : got) {
    EXPECT_EQ(n.distance, exact_by_id[n.id]) << "id " << n.id;
  }
  // Sorted by (distance, id).
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(Hnsw, HigherEfSearchNeverHurtsRecallHere) {
  const auto data = ClusteredData(1500, 24, 7);
  const auto queries = PerturbedQueries(data, 40, 71);
  LinearScanIndex scan(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(scan.Build(data).ok());

  HnswIndex hnsw(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(hnsw.Build(data).ok());
  hnsw.set_ef_search(8);
  const double low = RecallAtK(hnsw, scan, queries, 10);
  hnsw.set_ef_search(128);
  const double high = RecallAtK(hnsw, scan, queries, 10);
  EXPECT_GE(high, low);
  EXPECT_GE(high, 0.95);
}

TEST(Hnsw, ConstructionIsDeterministic) {
  const auto data = ClusteredData(600, 16, 5);
  BinaryWriter a, b;
  for (BinaryWriter* w : {&a, &b}) {
    HnswIndex hnsw(MakeMetric(MetricKind::kL2));
    ASSERT_TRUE(hnsw.Build(data).ok());
    hnsw.Serialize(w);
  }
  // Bit-identical serialized graphs: same bytes, not just same
  // topology — this is what lets sharded engines rebuild on Load.
  ASSERT_EQ(a.buffer().size(), b.buffer().size());
  EXPECT_EQ(a.buffer(), b.buffer());
}

TEST(Hnsw, SerializeDeserializeAttachRoundTripsSearches) {
  const auto data = ClusteredData(800, 24, 11);
  const auto queries = PerturbedQueries(data, 20, 23);
  HnswIndex hnsw(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(hnsw.Build(data).ok());

  BinaryWriter writer;
  hnsw.Serialize(&writer);

  HnswIndex restored(MakeMetric(MetricKind::kL2));
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(restored.Deserialize(&reader).ok());
  // Rows are never serialized; a graph without rows answers nothing.
  EXPECT_TRUE(KnnSearch(restored, queries[0], 5).empty());

  FeatureMatrix matrix(data[0].size());
  for (const Vec& v : data) matrix.AppendRow(v);
  ASSERT_TRUE(restored.AttachRows(RowView::Adopt(std::move(matrix))).ok());

  for (const Vec& q : queries) {
    const auto want = KnnSearch(hnsw, q, 10);
    const auto got = KnnSearch(restored, q, 10);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_EQ(got[i].distance, want[i].distance);
    }
  }
  // Round-trip bit-identity of the graph payload itself.
  BinaryWriter again;
  restored.Serialize(&again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(Hnsw, AttachRowsRejectsMismatchedSubstrate) {
  const auto data = ClusteredData(100, 8, 3);
  HnswIndex hnsw(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(hnsw.Build(data).ok());
  BinaryWriter writer;
  hnsw.Serialize(&writer);

  HnswIndex restored(MakeMetric(MetricKind::kL2));
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(restored.Deserialize(&reader).ok());

  FeatureMatrix wrong_count(8);
  for (size_t i = 0; i + 1 < data.size(); ++i) {
    wrong_count.AppendRow(data[i]);
  }
  EXPECT_FALSE(restored.AttachRows(RowView::Adopt(std::move(wrong_count))).ok());

  FeatureMatrix wrong_dim(9);
  for (const Vec& v : data) {
    Vec padded = v;
    padded.push_back(0.0f);
    wrong_dim.AppendRow(padded);
  }
  EXPECT_FALSE(restored.AttachRows(RowView::Adopt(std::move(wrong_dim))).ok());
}

TEST(Hnsw, SearchBatchBitIdenticalToPerQueryAcrossTiles) {
  const auto data = ClusteredData(700, 20, 13);
  const auto queries = PerturbedQueries(data, 60, 17);
  HnswIndex hnsw(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(hnsw.Build(data).ok());

  std::vector<std::vector<Neighbor>> want(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    want[i] = KnnSearch(hnsw, queries[i], 9);
  }
  const QueryBlock block = QueryBlock::Pack(queries);
  for (const size_t tile : {size_t{1}, size_t{7}, size_t{60}}) {
    std::vector<std::vector<Neighbor>> got(queries.size());
    std::vector<SearchStats> stats(queries.size());
    for (size_t begin = 0; begin < queries.size(); begin += tile) {
      const size_t count = std::min(tile, queries.size() - begin);
      hnsw.SearchBatch(block.Tile(begin, count), 9, got.data() + begin,
                       stats.data() + begin);
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got[i].size(), want[i].size()) << "tile " << tile;
      for (size_t j = 0; j < want[i].size(); ++j) {
        EXPECT_EQ(got[i][j].id, want[i][j].id) << "tile " << tile;
        EXPECT_EQ(got[i][j].distance, want[i][j].distance) << "tile " << tile;
      }
      EXPECT_GT(stats[i].distance_evals, 0u);
      EXPECT_GT(stats[i].nodes_visited, 0u);
      // The layer-0 beam reports its survivor count: with a full beam
      // it equals max(ef_search, k); never more, never zero here.
      EXPECT_GT(stats[i].ef_survivors, 0u);
      EXPECT_LE(stats[i].ef_survivors, std::max<size_t>(64, 9));
      // Float traversal has no rerank stage.
      EXPECT_EQ(stats[i].rerank_evals, 0u);
    }
  }
}

TEST(Hnsw, ExpiredCancellationClearsResultSlots) {
  const auto data = ClusteredData(500, 16, 19);
  const auto queries = PerturbedQueries(data, 8, 29);
  HnswIndex hnsw(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(hnsw.Build(data).ok());

  const QueryBlock block = QueryBlock::Pack(queries);
  std::vector<std::vector<Neighbor>> results(queries.size());
  const CancellationToken expired = CancellationToken::WithDeadline(
      CancellationToken::Clock::now() - std::chrono::seconds(1));
  hnsw.SearchBatch(block.Tile(0, queries.size()), 5, results.data(),
                   /*stats=*/nullptr, &expired);
  // Partial-results contract: every slot from the interrupted query
  // onward is cleared; with an already-expired token that is all of
  // them.
  for (const auto& r : results) EXPECT_TRUE(r.empty());

  // An inert token changes nothing.
  const CancellationToken inert;
  std::vector<std::vector<Neighbor>> with_inert(queries.size());
  hnsw.SearchBatch(block.Tile(0, queries.size()), 5, with_inert.data(),
                   nullptr, &inert);
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto want = KnnSearch(hnsw, queries[i], 5);
    ASSERT_EQ(with_inert[i].size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(with_inert[i][j], want[j]);
    }
  }
}

TEST(Hnsw, RangeSearchIsExact) {
  const auto data = ClusteredData(400, 12, 23);
  const auto queries = PerturbedQueries(data, 10, 31);
  HnswIndex hnsw(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(hnsw.Build(data).ok());
  LinearScanIndex scan(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(scan.Build(data).ok());

  for (const Vec& q : queries) {
    // A radius that catches a meaningful subset.
    const auto anchor = KnnSearch(scan, q, 20);
    ASSERT_FALSE(anchor.empty());
    const double radius = anchor.back().distance;
    SearchStats hs, ss;
    const auto got = hnsw.RangeSearch(q, radius, &hs);
    const auto want = scan.RangeSearch(q, radius, &ss);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
  }
}

TEST(Hnsw, QuantizedTraversalKeepsDistancesExact) {
  const auto data = ClusteredData(1200, 32, 37);
  const auto queries = PerturbedQueries(data, 30, 41);
  LinearScanIndex scan(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(scan.Build(data).ok());
  const auto truth_all = [&](const Vec& q) {
    std::vector<double> by_id(data.size());
    for (const Neighbor& n : KnnSearch(scan, q, data.size())) {
      by_id[n.id] = n.distance;
    }
    return by_id;
  };

  for (const HnswTraversal traversal :
       {HnswTraversal::kInt8, HnswTraversal::kPq}) {
    HnswOptions options;
    options.traversal = traversal;
    options.pq.m = 8;
    HnswIndex hnsw(MakeMetric(MetricKind::kL2), options);
    ASSERT_TRUE(hnsw.Build(data).ok());

    // The quantized beam may alter WHICH neighbors surface (recall is
    // judged loosely) but every reported distance is the exact float
    // distance (the rerank stage).
    const double recall = RecallAtK(hnsw, scan, queries, 10);
    EXPECT_GE(recall, 0.7) << (traversal == HnswTraversal::kInt8 ? "int8"
                                                                 : "pq");
    const auto by_id = truth_all(queries[0]);
    SearchStats stats;
    for (const Neighbor& n : hnsw.KnnSearch(queries[0], 10, &stats)) {
      EXPECT_EQ(n.distance, by_id[n.id]);
    }
    // Quantized traversal counts its stages separately: compressed-
    // domain beam evals in distance_evals, the exact float rerank of
    // the ef survivors in rerank_evals (one per survivor).
    EXPECT_GT(stats.distance_evals, 0u);
    EXPECT_GT(stats.rerank_evals, 0u);
    EXPECT_EQ(stats.rerank_evals, stats.ef_survivors);

    // Traversal tables round-trip with the graph.
    BinaryWriter writer;
    hnsw.Serialize(&writer);
    HnswIndex restored(MakeMetric(MetricKind::kL2), options);
    BinaryReader reader(writer.buffer());
    ASSERT_TRUE(restored.Deserialize(&reader).ok());
    FeatureMatrix matrix(data[0].size());
    for (const Vec& v : data) matrix.AppendRow(v);
    ASSERT_TRUE(restored.AttachRows(RowView::Adopt(std::move(matrix))).ok());
    for (const Vec& q : queries) {
      const auto want = KnnSearch(hnsw, q, 10);
      const auto got = KnnSearch(restored, q, 10);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
    }
  }
}

TEST(Hnsw, EdgeShapes) {
  HnswIndex empty(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(empty.Build({}).ok());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(KnnSearch(empty, Vec{1.0f, 2.0f}, 5).empty());
  SearchStats stats;
  EXPECT_TRUE(empty.RangeSearch(Vec{1.0f, 2.0f}, 10.0, &stats).empty());

  const auto data = ClusteredData(30, 8, 43);
  HnswIndex hnsw(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(hnsw.Build(data).ok());
  // k = 0.
  EXPECT_TRUE(KnnSearch(hnsw, data[0], 0).empty());
  // k > n returns everything, exactly.
  LinearScanIndex scan(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(scan.Build(data).ok());
  const auto got = KnnSearch(hnsw, data[0], 100);
  const auto want = KnnSearch(scan, data[0], 100);
  ASSERT_EQ(got.size(), data.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);

  // Single row.
  HnswIndex one(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(one.Build({data[0]}).ok());
  const auto single = KnnSearch(one, data[1], 4);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].id, 0u);

  EXPECT_GT(hnsw.MemoryBytes(), 0u);
  EXPECT_NE(hnsw.Name().find("hnsw"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Corrupt-graph corpus: targeted mutations of a genuine Serialize
// payload. Every one must come back as a non-OK Status from
// Deserialize — never a crash or an out-of-bounds read later.
//
// Fixed header layout (offsets into the payload):
//   0  u32 format          4  u64 m            12 u64 ef_construction
//   20 u64 ef_search       28 u64 seed         36 u32 traversal
//   40 u64 dim             48 u64 count        56 u32 entry_point
//   60 u32 max_level       64.. length-prefixed arrays
class HnswCorruptGraph : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = ClusteredData(60, 8, 47);
    HnswIndex hnsw(MakeMetric(MetricKind::kL2));
    ASSERT_TRUE(hnsw.Build(data_).ok());
    BinaryWriter writer;
    hnsw.Serialize(&writer);
    bytes_ = writer.buffer();
    ASSERT_GT(bytes_.size(), 64u);
  }

  template <typename T>
  void Poke(size_t offset, T value) {
    ASSERT_LE(offset + sizeof(T), bytes_.size());
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

  void ExpectRejected(const std::string& tag) {
    HnswIndex index(MakeMetric(MetricKind::kL2));
    BinaryReader reader(bytes_);
    const Status status = index.Deserialize(&reader);
    EXPECT_FALSE(status.ok()) << tag;
    // The failed index stays empty and inert.
    EXPECT_EQ(index.size(), 0u) << tag;
  }

  std::vector<Vec> data_;
  std::vector<uint8_t> bytes_;
};

TEST_F(HnswCorruptGraph, BadFormatVersion) {
  Poke<uint32_t>(0, 999);
  ExpectRejected("format");
}

TEST_F(HnswCorruptGraph, NeighborCapOutOfRange) {
  Poke<uint64_t>(4, 1);
  ExpectRejected("m_too_small");
  SetUp();
  Poke<uint64_t>(4, uint64_t{1} << 40);
  ExpectRejected("m_huge");
}

TEST_F(HnswCorruptGraph, UnknownTraversal) {
  Poke<uint32_t>(36, 9);
  ExpectRejected("traversal");
}

TEST_F(HnswCorruptGraph, EntryPointOutOfRange) {
  Poke<uint32_t>(56, static_cast<uint32_t>(data_.size()));
  ExpectRejected("entry");
}

TEST_F(HnswCorruptGraph, MaxLevelOutOfRange) {
  Poke<uint32_t>(60, 200);
  ExpectRejected("max_level");
}

TEST_F(HnswCorruptGraph, CountMismatchesArrays) {
  Poke<uint64_t>(48, data_.size() + 4);
  ExpectRejected("count_up");
  SetUp();
  Poke<uint64_t>(48, data_.size() - 4);
  ExpectRejected("count_down");
}

TEST_F(HnswCorruptGraph, LayerZeroDegreeExceedsCap) {
  // counts0 is the second array: levels starts at 64 with a u64
  // length; counts0's data begins after it.
  const size_t counts0_data = 64 + 8 + 4 * data_.size() + 8;
  Poke<uint32_t>(counts0_data, 1000);
  ExpectRejected("degree");
}

TEST_F(HnswCorruptGraph, LinkIdOutOfRange) {
  // links0 is the third array; its first element is a live link for
  // node 0 (degree >= 1 in any connected 60-node graph).
  const size_t links0_data =
      64 + (8 + 4 * data_.size()) + (8 + 4 * data_.size()) + 8;
  Poke<uint32_t>(links0_data, static_cast<uint32_t>(data_.size() + 7));
  ExpectRejected("link_id");
}

TEST_F(HnswCorruptGraph, TruncationsAreRejected) {
  const std::vector<uint8_t> whole = bytes_;
  for (const size_t cut :
       {size_t{0}, size_t{3}, size_t{37}, size_t{63}, size_t{64},
        whole.size() / 2, whole.size() - 1}) {
    bytes_.assign(whole.begin(), whole.begin() + cut);
    ExpectRejected("cut" + std::to_string(cut));
  }
}

// ---------------------------------------------------------------------------
// Engine-config validation for the new kind: which metrics navigate,
// which quantized-traversal combos are legal, and that each rejection
// carries a message naming the actual constraint.

TEST(HnswConfig, MetricValidation) {
  for (const MetricKind ok :
       {MetricKind::kL1, MetricKind::kL2, MetricKind::kLInf,
        MetricKind::kHellinger, MetricKind::kCosine}) {
    EXPECT_TRUE(ValidateIndexMetricCombination(IndexKind::kHnsw, ok).ok())
        << MetricKindName(ok);
  }
  for (const MetricKind bad :
       {MetricKind::kHistogramIntersection, MetricKind::kChiSquare}) {
    const Status status =
        ValidateIndexMetricCombination(IndexKind::kHnsw, bad);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << MetricKindName(bad);
    EXPECT_NE(status.message().find("hnsw"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("navigable"), std::string::npos)
        << status.message();
  }
}

TEST(HnswConfig, KnobValidation) {
  EngineConfig config;
  config.index_kind = IndexKind::kHnsw;
  config.metric = MetricKind::kL2;
  ASSERT_TRUE(ValidateEngineConfig(config).ok());

  EngineConfig bad = config;
  bad.hnsw_m = 1;
  EXPECT_EQ(ValidateEngineConfig(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ValidateEngineConfig(bad).message().find("hnsw_m"),
            std::string::npos);
  bad = config;
  bad.hnsw_m = 4096;
  EXPECT_EQ(ValidateEngineConfig(bad).code(), StatusCode::kInvalidArgument);
  bad = config;
  bad.hnsw_ef_construction = config.hnsw_m - 1;
  EXPECT_EQ(ValidateEngineConfig(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ValidateEngineConfig(bad).message().find("ef_construction"),
            std::string::npos);
  bad = config;
  bad.hnsw_ef_search = 0;
  EXPECT_EQ(ValidateEngineConfig(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ValidateEngineConfig(bad).message().find("ef_search"),
            std::string::npos);
}

TEST(HnswConfig, QuantizedTraversalCombos) {
  // Quantization rides on scan-shaped kinds: linear scan or hnsw.
  EngineConfig config;
  config.metric = MetricKind::kL2;
  config.quantization = QuantizationKind::kInt8;
  for (const IndexKind ok : {IndexKind::kLinearScan, IndexKind::kHnsw}) {
    config.index_kind = ok;
    EXPECT_TRUE(MakeIndex(config).ok()) << IndexKindName(ok);
  }
  config.index_kind = IndexKind::kVpTree;
  const auto tree = MakeIndex(config);
  EXPECT_EQ(tree.status().code(), StatusCode::kInvalidArgument);
  // The message must name the rule as it stands now (scan-shaped
  // kinds), not the pre-HNSW "requires linear_scan" phrasing.
  EXPECT_NE(tree.status().message().find("linear_scan, or hnsw"),
            std::string::npos)
      << tree.status().message();

  // Quantized hnsw traversal is an L2-only construction.
  config.index_kind = IndexKind::kHnsw;
  config.metric = MetricKind::kL1;
  const auto l1 = MakeIndex(config);
  EXPECT_EQ(l1.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(l1.status().message().find("l2"), std::string::npos)
      << l1.status().message();
  config.metric = MetricKind::kCosine;
  EXPECT_FALSE(MakeIndex(config).ok());

  // The quantized hnsw index names its traversal backing.
  config.metric = MetricKind::kL2;
  config.quantization = QuantizationKind::kInt8;
  const auto named = MakeIndex(config);
  ASSERT_TRUE(named.ok());
  EXPECT_NE(named.value()->Name().find("int8"), std::string::npos)
      << named.value()->Name();
}

TEST_F(HnswCorruptGraph, ValidBytesStillLoadAfterSetUp) {
  // Sanity: the fixture's unmutated payload is genuinely loadable
  // (guards against the corpus passing because SetUp broke).
  HnswIndex index(MakeMetric(MetricKind::kL2));
  BinaryReader reader(bytes_);
  ASSERT_TRUE(index.Deserialize(&reader).ok());
  EXPECT_EQ(index.size(), data_.size());
}

}  // namespace
}  // namespace cbix
