#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace cbix {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(n), n);
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(29);
  for (size_t n : {5ULL, 50ULL, 1000ULL}) {
    for (size_t k : {1ULL, 3ULL, 5ULL}) {
      if (k > n) continue;
      const auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (size_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(31);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleCoversAllElementsEventually) {
  // Floyd path (k * 20 < n): every element must be reachable.
  Rng rng(37);
  std::set<size_t> seen;
  for (int rep = 0; rep < 3000 && seen.size() < 100; ++rep) {
    for (size_t v : rng.SampleWithoutReplacement(100, 2)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ReSeedReproducesSequence) {
  Rng rng(55);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.Next());
  rng.Seed(55);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

}  // namespace
}  // namespace cbix
