#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "distance/hausdorff.h"
#include "distance/histogram_measures.h"
#include "distance/metric.h"
#include "distance/minkowski.h"
#include "distance/quadratic_form.h"
#include "image/color.h"
#include "util/random.h"

namespace cbix {
namespace {

TEST(MinkowskiTest, KnownValues) {
  const Vec a{0, 0, 0};
  const Vec b{3, 4, 0};
  EXPECT_DOUBLE_EQ(L1Distance().Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(L2Distance().Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(LInfDistance().Distance(a, b), 4.0);
  EXPECT_NEAR(MinkowskiDistance(3).Distance(a, b),
              std::pow(27.0 + 64.0, 1.0 / 3.0), 1e-9);
}

TEST(MinkowskiTest, GeneralPMatchesSpecialCases) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    Vec a(5), b(5);
    for (int j = 0; j < 5; ++j) {
      a[j] = static_cast<float>(rng.NextDouble());
      b[j] = static_cast<float>(rng.NextDouble());
    }
    EXPECT_NEAR(MinkowskiDistance(1).Distance(a, b),
                L1Distance().Distance(a, b), 1e-9);
    EXPECT_NEAR(MinkowskiDistance(2).Distance(a, b),
                L2Distance().Distance(a, b), 1e-9);
  }
}

TEST(WeightedL2Test, WeightsScaleDimensions) {
  WeightedL2Distance wd(Vec{4.0f, 0.0f});
  // Only the first dimension counts, scaled by sqrt(4)=2.
  EXPECT_DOUBLE_EQ(wd.Distance({0, 0}, {3, 100}), 6.0);
}

TEST(WeightedL2Test, UnitWeightsEqualL2) {
  WeightedL2Distance wd(Vec{1, 1, 1});
  L2Distance l2;
  const Vec a{0.1f, 0.5f, 0.9f}, b{0.3f, 0.2f, 0.4f};
  EXPECT_NEAR(wd.Distance(a, b), l2.Distance(a, b), 1e-9);
}

TEST(HistogramIntersectionTest, IdenticalHistogramsZero) {
  const Vec h{0.25f, 0.25f, 0.5f};
  EXPECT_NEAR(HistogramIntersectionDistance().Distance(h, h), 0.0, 1e-9);
}

TEST(HistogramIntersectionTest, DisjointHistogramsOne) {
  const Vec h{1.0f, 0.0f}, g{0.0f, 1.0f};
  EXPECT_NEAR(HistogramIntersectionDistance().Distance(h, g), 1.0, 1e-9);
}

TEST(HistogramIntersectionTest, EqualsHalfL1OnNormalizedInputs) {
  Rng rng(2);
  HistogramIntersectionDistance hi;
  L1Distance l1;
  for (int trial = 0; trial < 30; ++trial) {
    Vec a(8), b(8);
    float sa = 0, sb = 0;
    for (int i = 0; i < 8; ++i) {
      a[i] = static_cast<float>(rng.NextDouble());
      b[i] = static_cast<float>(rng.NextDouble());
      sa += a[i];
      sb += b[i];
    }
    for (int i = 0; i < 8; ++i) {
      a[i] /= sa;
      b[i] /= sb;
    }
    EXPECT_NEAR(hi.Distance(a, b), 0.5 * l1.Distance(a, b), 1e-5);
  }
}

TEST(ChiSquareTest, KnownValueAndZeroIdentity) {
  ChiSquareDistance chi;
  EXPECT_NEAR(chi.Distance({0.5f, 0.5f}, {0.5f, 0.5f}), 0.0, 1e-12);
  // 0.5 * ((0.2)^2/1.0 + (0.2)^2/1.0) with bins {0.6,0.4} vs {0.4,0.6}:
  // each bin: (0.2)^2 / 1.0 = 0.04 -> total 0.5*0.08 = 0.04.
  EXPECT_NEAR(chi.Distance({0.6f, 0.4f}, {0.4f, 0.6f}), 0.04, 1e-6);
}

TEST(HellingerTest, BoundedByOneOnDistributions) {
  HellingerDistance h;
  EXPECT_NEAR(h.Distance({1.0f, 0.0f}, {0.0f, 1.0f}), 1.0, 1e-6);
  EXPECT_NEAR(h.Distance({0.5f, 0.5f}, {0.5f, 0.5f}), 0.0, 1e-9);
}

TEST(CosineTest, OrthogonalAndParallel) {
  CosineDistance c;
  EXPECT_NEAR(c.Distance({1, 0}, {0, 1}), 1.0, 1e-9);
  EXPECT_NEAR(c.Distance({1, 1}, {2, 2}), 0.0, 1e-9);
  EXPECT_NEAR(c.Distance({1, 0}, {-1, 0}), 2.0, 1e-9);
}

TEST(CanberraTest, KnownValue) {
  CanberraDistance c;
  // |1-3|/(1+3) + |2-2|/(2+2) = 0.5.
  EXPECT_NEAR(c.Distance({1, 2}, {3, 2}), 0.5, 1e-9);
  EXPECT_NEAR(c.Distance({0, 0}, {0, 0}), 0.0, 1e-12);
}

// --------------------------------------------------------------------------
// Metric axioms: parameterized over every measure that claims to be a
// metric, probed on random histogram-like vectors.

struct MetricCase {
  std::string name;
  std::shared_ptr<const DistanceMetric> metric;
};

class MetricAxiomsTest : public ::testing::TestWithParam<MetricCase> {};

TEST_P(MetricAxiomsTest, HoldOnRandomSample) {
  const auto& metric = *GetParam().metric;
  Rng rng(99);
  std::vector<Vec> sample;
  for (int i = 0; i < 12; ++i) {
    Vec v(6);
    float mass = 0;
    for (auto& x : v) {
      x = static_cast<float>(rng.NextDouble());
      mass += x;
    }
    for (auto& x : v) x /= mass;  // normalized histograms
    sample.push_back(v);
  }
  const MetricCheckReport report = CheckMetricAxioms(metric, sample);
  EXPECT_TRUE(report.Passed(1e-6))
      << GetParam().name << ": asym=" << report.max_asymmetry
      << " tri=" << report.max_triangle_violation
      << " neg=" << report.max_negative_distance
      << " self=" << report.max_self_distance;
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, MetricAxiomsTest,
    ::testing::Values(
        MetricCase{"l1", std::make_shared<L1Distance>()},
        MetricCase{"l2", std::make_shared<L2Distance>()},
        MetricCase{"linf", std::make_shared<LInfDistance>()},
        MetricCase{"l3", std::make_shared<MinkowskiDistance>(3.0)},
        MetricCase{"weighted_l2",
                   std::make_shared<WeightedL2Distance>(
                       Vec{1.0f, 0.5f, 2.0f, 1.0f, 0.1f, 3.0f})},
        MetricCase{"hellinger", std::make_shared<HellingerDistance>()},
        MetricCase{"canberra", std::make_shared<CanberraDistance>()}),
    [](const ::testing::TestParamInfo<MetricCase>& info) {
      return info.param.name;
    });

TEST(MetricFlagsTest, NonMetricsDeclareThemselves) {
  EXPECT_FALSE(ChiSquareDistance().is_metric());
  EXPECT_FALSE(CosineDistance().is_metric());
  EXPECT_FALSE(HistogramIntersectionDistance().is_metric());
  EXPECT_TRUE(L2Distance().is_metric());
  EXPECT_TRUE(HellingerDistance().is_metric());
}

TEST(CountingMetricTest, CountsAndResets) {
  auto counting =
      std::make_shared<CountingMetric>(std::make_shared<L2Distance>());
  const Vec a{1, 2}, b{3, 4};
  EXPECT_EQ(counting->count(), 0u);
  counting->Distance(a, b);
  counting->Distance(a, b);
  EXPECT_EQ(counting->count(), 2u);
  counting->Reset();
  EXPECT_EQ(counting->count(), 0u);
  EXPECT_EQ(counting->Name(), "l2");
}

// --------------------------------------------------------------------------
// Quadratic form

TEST(QuadraticFormTest, IdentityMatrixEqualsL2) {
  QuadraticFormDistance qf(Matrix::Identity(4));
  L2Distance l2;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    Vec a(4), b(4);
    for (int j = 0; j < 4; ++j) {
      a[j] = static_cast<float>(rng.NextDouble());
      b[j] = static_cast<float>(rng.NextDouble());
    }
    EXPECT_NEAR(qf.Distance(a, b), l2.Distance(a, b), 1e-6);
  }
}

TEST(QuadraticFormTest, CrossBinSimilaritySoftensNeighbourShift) {
  // Moving mass to a perceptually similar bin must cost less than moving
  // it to a dissimilar bin.
  RgbUniformQuantizer quantizer(2);  // 8 bins
  const QuadraticFormDistance qf = MakeColorQuadraticForm(quantizer, 4.0);
  L2Distance l2;

  Vec base(8, 0.0f), near_shift(8, 0.0f), far_shift(8, 0.0f);
  // Bin 0 = dark, bin 1 differs only in blue; bin 7 = opposite corner.
  base[0] = 1.0f;
  near_shift[1] = 1.0f;
  far_shift[7] = 1.0f;
  EXPECT_LT(qf.Distance(base, near_shift), qf.Distance(base, far_shift));
  // Plain L2 cannot tell the two shifts apart.
  EXPECT_NEAR(l2.Distance(base, near_shift), l2.Distance(base, far_shift),
              1e-9);
}

TEST(QuadraticFormTest, ZeroForIdenticalVectors) {
  RgbUniformQuantizer quantizer(2);
  const QuadraticFormDistance qf = MakeColorQuadraticForm(quantizer);
  const Vec h{0.5f, 0.5f, 0, 0, 0, 0, 0, 0};
  EXPECT_NEAR(qf.Distance(h, h), 0.0, 1e-9);
}

TEST(QuadraticFormTest, SatisfiesMetricAxiomsOnSample) {
  RgbUniformQuantizer quantizer(2);
  const auto qf = std::make_shared<QuadraticFormDistance>(
      MakeColorQuadraticForm(quantizer, 4.0));
  Rng rng(6);
  std::vector<Vec> sample;
  for (int i = 0; i < 10; ++i) {
    Vec v(8);
    float mass = 0;
    for (auto& x : v) {
      x = static_cast<float>(rng.NextDouble());
      mass += x;
    }
    for (auto& x : v) x /= mass;
    sample.push_back(v);
  }
  EXPECT_TRUE(CheckMetricAxioms(*qf, sample).Passed(1e-6));
}

// --------------------------------------------------------------------------
// Hausdorff

TEST(HausdorffTest, IdenticalSetsZero) {
  const PointSet a{{0, 0}, {1, 1}, {2, 2}};
  EXPECT_EQ(HausdorffDistance(a, a), 0.0);
}

TEST(HausdorffTest, KnownAsymmetry) {
  const PointSet a{{0, 0}};
  const PointSet b{{0, 0}, {10, 0}};
  EXPECT_EQ(DirectedHausdorff(a, b), 0.0);
  EXPECT_EQ(DirectedHausdorff(b, a), 10.0);
  EXPECT_EQ(HausdorffDistance(a, b), 10.0);
}

TEST(HausdorffTest, EmptySetConventions) {
  const PointSet empty;
  const PointSet a{{1, 2}};
  EXPECT_EQ(DirectedHausdorff(empty, a), 0.0);
  EXPECT_GT(DirectedHausdorff(a, empty), 1e29);
}

TEST(HausdorffTest, PartialIgnoresOutliers) {
  PointSet a, b;
  for (int i = 0; i < 9; ++i) {
    a.push_back({static_cast<float>(i), 0.0f});
    b.push_back({static_cast<float>(i), 0.5f});
  }
  a.push_back({100.0f, 100.0f});  // outlier in a only
  EXPECT_GT(DirectedHausdorff(a, b), 50.0);
  EXPECT_NEAR(PartialDirectedHausdorff(a, b, 0.9), 0.5, 1e-5);
}

TEST(HausdorffTest, PartialQuantileOneEqualsFull) {
  Rng rng(8);
  PointSet a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back({static_cast<float>(rng.NextDouble() * 10),
                 static_cast<float>(rng.NextDouble() * 10)});
    b.push_back({static_cast<float>(rng.NextDouble() * 10),
                 static_cast<float>(rng.NextDouble() * 10)});
  }
  EXPECT_NEAR(PartialDirectedHausdorff(a, b, 1.0), DirectedHausdorff(a, b),
              1e-9);
}

TEST(HausdorffTest, PointSetFromMask) {
  std::vector<uint8_t> mask(6, 0);
  mask[1] = 1;  // (1, 0) in a 3x2 image
  mask[5] = 1;  // (2, 1)
  const PointSet points = PointSetFromMask(mask, 3, 2);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0][0], 1.0f);
  EXPECT_EQ(points[0][1], 0.0f);
  EXPECT_EQ(points[1][0], 2.0f);
  EXPECT_EQ(points[1][1], 1.0f);
}

}  // namespace
}  // namespace cbix
