// The central exactness property of the reproduction: every index
// structure must return byte-identical result sets to a linear scan
// under the same metric, for range and k-NN queries, across workload
// distributions, dimensionalities and index configurations.

#include <gtest/gtest.h>

#include <memory>

#include "corpus/vector_workload.h"
#include "distance/minkowski.h"
#include "index/index.h"
#include "index/kd_tree.h"
#include "index/linear_scan.h"
#include "index/rtree.h"
#include "index/vp_tree.h"

namespace cbix {
namespace {

enum class IndexUnderTest {
  kVpTree2,
  kVpTree4,
  kVpTree8,
  kVpTreeRandom,
  kVpTreeCorner,
  kKdTree,
  kRTreeStr,
  kRTreeDynamic,
};

struct PropertyCase {
  std::string name;
  IndexUnderTest index;
  VectorDistribution distribution;
  size_t dim;
  MinkowskiKind metric;
};

std::unique_ptr<VectorIndex> MakeIndexUnderTest(IndexUnderTest kind,
                                                MinkowskiKind metric) {
  switch (kind) {
    case IndexUnderTest::kVpTree2: {
      VpTreeOptions o;
      o.arity = 2;
      return std::make_unique<VpTree>(MakeMinkowskiMetric(metric), o);
    }
    case IndexUnderTest::kVpTree4: {
      VpTreeOptions o;
      o.arity = 4;
      o.leaf_size = 8;
      return std::make_unique<VpTree>(MakeMinkowskiMetric(metric), o);
    }
    case IndexUnderTest::kVpTree8: {
      VpTreeOptions o;
      o.arity = 8;
      o.leaf_size = 4;
      return std::make_unique<VpTree>(MakeMinkowskiMetric(metric), o);
    }
    case IndexUnderTest::kVpTreeRandom: {
      VpTreeOptions o;
      o.selection = VantageSelection::kRandom;
      return std::make_unique<VpTree>(MakeMinkowskiMetric(metric), o);
    }
    case IndexUnderTest::kVpTreeCorner: {
      VpTreeOptions o;
      o.selection = VantageSelection::kCorner;
      return std::make_unique<VpTree>(MakeMinkowskiMetric(metric), o);
    }
    case IndexUnderTest::kKdTree: {
      KdTreeOptions o;
      o.metric = metric;
      o.leaf_size = 8;
      return std::make_unique<KdTree>(o);
    }
    case IndexUnderTest::kRTreeStr: {
      RTreeOptions o;
      o.metric = metric;
      return std::make_unique<RTree>(o);
    }
    case IndexUnderTest::kRTreeDynamic: {
      RTreeOptions o;
      o.metric = metric;
      o.bulk_load = false;
      o.max_entries = 8;
      o.min_entries = 3;
      return std::make_unique<RTree>(o);
    }
  }
  return nullptr;
}

class IndexEquivalence : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(IndexEquivalence, MatchesLinearScan) {
  const PropertyCase& param = GetParam();

  VectorWorkloadSpec spec;
  spec.distribution = param.distribution;
  spec.count = 600;
  spec.dim = param.dim;
  spec.seed = 1234;
  const std::vector<Vec> data = GenerateVectors(spec);

  LinearScanIndex reference(MakeMinkowskiMetric(param.metric));
  ASSERT_TRUE(reference.Build(data).ok());

  auto index = MakeIndexUnderTest(param.index, param.metric);
  ASSERT_TRUE(index->Build(data).ok());
  ASSERT_EQ(index->size(), data.size());
  ASSERT_EQ(index->dim(), param.dim);

  const std::vector<Vec> queries =
      GenerateQueries(spec, data, QueryMode::kPerturbedData, 12, 0.03, 777);

  // Pick radii that produce small, medium and large result sets.
  for (const Vec& q : queries) {
    const auto knn_ref = KnnSearch(reference, q, 10);
    ASSERT_EQ(knn_ref.size(), 10u);
    const double r_small = knn_ref[2].distance;
    const double r_large = knn_ref[9].distance * 1.5;

    for (double radius : {r_small, r_large}) {
      SearchStats stats;
      const auto got = index->RangeSearch(q, radius, &stats);
      const auto want = RangeSearch(reference, q, radius);
      ASSERT_EQ(got.size(), want.size())
          << index->Name() << " radius=" << radius;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id);
        EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
      }
    }

    for (size_t k : {1ULL, 5ULL, 25ULL}) {
      const auto got = KnnSearch(*index, q, k);
      const auto want = KnnSearch(reference, q, k);
      ASSERT_EQ(got.size(), want.size()) << index->Name() << " k=" << k;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id) << index->Name() << " k=" << k;
        EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
      }
    }
  }
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  const std::pair<IndexUnderTest, std::string> indexes[] = {
      {IndexUnderTest::kVpTree2, "vp2"},
      {IndexUnderTest::kVpTree4, "vp4"},
      {IndexUnderTest::kVpTree8, "vp8"},
      {IndexUnderTest::kVpTreeRandom, "vp_random"},
      {IndexUnderTest::kVpTreeCorner, "vp_corner"},
      {IndexUnderTest::kKdTree, "kd"},
      {IndexUnderTest::kRTreeStr, "rtree_str"},
      {IndexUnderTest::kRTreeDynamic, "rtree_dyn"},
  };
  const std::pair<VectorDistribution, std::string> distributions[] = {
      {VectorDistribution::kUniform, "uniform"},
      {VectorDistribution::kClustered, "clustered"},
  };
  const std::pair<MinkowskiKind, std::string> metrics[] = {
      {MinkowskiKind::kL1, "l1"},
      {MinkowskiKind::kL2, "l2"},
      {MinkowskiKind::kLInf, "linf"},
  };
  for (const auto& [index, iname] : indexes) {
    for (const auto& [dist, dname] : distributions) {
      for (const auto& [metric, mname] : metrics) {
        // Two dimensionalities: comfortable and curse-y.
        for (size_t dim : {4ULL, 16ULL}) {
          cases.push_back({iname + "_" + dname + "_" + mname + "_d" +
                               std::to_string(dim),
                           index, dist, dim, metric});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, IndexEquivalence, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.name;
    });

// --------------------------------------------------------------------------
// Degenerate inputs, shared across implementations.

class IndexEdgeCases
    : public ::testing::TestWithParam<
          std::pair<std::string, IndexUnderTest>> {};

TEST_P(IndexEdgeCases, EmptyIndex) {
  auto index = MakeIndexUnderTest(GetParam().second, MinkowskiKind::kL2);
  ASSERT_TRUE(index->Build({}).ok());
  EXPECT_EQ(index->size(), 0u);
  EXPECT_TRUE(KnnSearch(*index, {}, 5).empty());
  EXPECT_TRUE(RangeSearch(*index, {}, 1.0).empty());
}

TEST_P(IndexEdgeCases, SingleElement) {
  auto index = MakeIndexUnderTest(GetParam().second, MinkowskiKind::kL2);
  ASSERT_TRUE(index->Build({{1.0f, 2.0f}}).ok());
  const auto knn = KnnSearch(*index, {1.0f, 2.0f}, 3);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].id, 0u);
  EXPECT_NEAR(knn[0].distance, 0.0, 1e-12);
}

TEST_P(IndexEdgeCases, AllDuplicateVectors) {
  auto index = MakeIndexUnderTest(GetParam().second, MinkowskiKind::kL2);
  const std::vector<Vec> data(50, Vec{0.5f, 0.5f, 0.5f});
  ASSERT_TRUE(index->Build(data).ok());
  const auto hits = RangeSearch(*index, {0.5f, 0.5f, 0.5f}, 0.0);
  EXPECT_EQ(hits.size(), 50u);
  const auto knn = KnnSearch(*index, {0.5f, 0.5f, 0.5f}, 7);
  ASSERT_EQ(knn.size(), 7u);
  // Deterministic tie-break: ascending ids.
  for (size_t i = 0; i < knn.size(); ++i) EXPECT_EQ(knn[i].id, i);
}

TEST_P(IndexEdgeCases, KLargerThanSize) {
  auto index = MakeIndexUnderTest(GetParam().second, MinkowskiKind::kL2);
  VectorWorkloadSpec spec;
  spec.count = 5;
  spec.dim = 3;
  ASSERT_TRUE(index->Build(GenerateVectors(spec)).ok());
  EXPECT_EQ(KnnSearch(*index, Vec{0.5f, 0.5f, 0.5f}, 100).size(), 5u);
}

TEST_P(IndexEdgeCases, ZeroRadiusFindsExactMatchesOnly) {
  auto index = MakeIndexUnderTest(GetParam().second, MinkowskiKind::kL2);
  VectorWorkloadSpec spec;
  spec.count = 60;
  spec.dim = 4;
  std::vector<Vec> data = GenerateVectors(spec);
  const Vec probe = data[17];
  ASSERT_TRUE(index->Build(data).ok());
  const auto hits = RangeSearch(*index, probe, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 17u);
}

TEST_P(IndexEdgeCases, InconsistentDimensionsRejected) {
  auto index = MakeIndexUnderTest(GetParam().second, MinkowskiKind::kL2);
  const Status s = index->Build({{1.0f, 2.0f}, {1.0f}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_P(IndexEdgeCases, RebuildReplacesContents) {
  auto index = MakeIndexUnderTest(GetParam().second, MinkowskiKind::kL2);
  ASSERT_TRUE(index->Build({{0.0f}, {1.0f}, {2.0f}}).ok());
  ASSERT_TRUE(index->Build({{5.0f}}).ok());
  EXPECT_EQ(index->size(), 1u);
  const auto knn = KnnSearch(*index, {5.0f}, 10);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].id, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexEdgeCases,
    ::testing::Values(
        std::make_pair(std::string("vp2"), IndexUnderTest::kVpTree2),
        std::make_pair(std::string("vp4"), IndexUnderTest::kVpTree4),
        std::make_pair(std::string("kd"), IndexUnderTest::kKdTree),
        std::make_pair(std::string("rtree_str"), IndexUnderTest::kRTreeStr),
        std::make_pair(std::string("rtree_dyn"),
                       IndexUnderTest::kRTreeDynamic)),
    [](const ::testing::TestParamInfo<
        std::pair<std::string, IndexUnderTest>>& info) {
      return info.param.first;
    });

// --------------------------------------------------------------------------
// Cost accounting sanity: trees must beat the scan on clustered data.

TEST(IndexPruningTest, TreesEvaluateFewerDistancesThanScan) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = 4000;
  spec.dim = 8;
  spec.num_clusters = 32;
  spec.cluster_sigma = 0.03;
  const auto data = GenerateVectors(spec);
  const auto queries =
      GenerateQueries(spec, data, QueryMode::kPerturbedData, 10, 0.01);

  for (IndexUnderTest kind :
       {IndexUnderTest::kVpTree4, IndexUnderTest::kKdTree,
        IndexUnderTest::kRTreeStr}) {
    auto index = MakeIndexUnderTest(kind, MinkowskiKind::kL2);
    ASSERT_TRUE(index->Build(data).ok());
    uint64_t total_evals = 0;
    for (const Vec& q : queries) {
      SearchStats stats;
      index->KnnSearch(q, 5, &stats);
      total_evals += stats.distance_evals;
    }
    const double mean_evals =
        static_cast<double>(total_evals) / queries.size();
    EXPECT_LT(mean_evals, 0.5 * static_cast<double>(data.size()))
        << index->Name() << " failed to prune";
  }
}

TEST(IndexStatsTest, StatsAccumulateAcrossCalls) {
  VectorWorkloadSpec spec;
  spec.count = 200;
  spec.dim = 4;
  VpTreeOptions o;
  VpTree tree(MakeMinkowskiMetric(MinkowskiKind::kL2), o);
  ASSERT_TRUE(tree.Build(GenerateVectors(spec)).ok());
  SearchStats stats;
  tree.KnnSearch(Vec{0.5f, 0.5f, 0.5f, 0.5f}, 5, &stats);
  const uint64_t after_one = stats.distance_evals;
  EXPECT_GT(after_one, 0u);
  tree.KnnSearch(Vec{0.5f, 0.5f, 0.5f, 0.5f}, 5, &stats);
  EXPECT_EQ(stats.distance_evals, 2 * after_one);
}

TEST(NeighborTest, OrderingIsDistanceThenId) {
  const Neighbor a{1, 0.5}, b{2, 0.5}, c{0, 0.7};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_FALSE(c < a);
}

}  // namespace
}  // namespace cbix
