// SIMD dispatch suite: every ISA tier compiled into this binary and
// supported by the host must (a) agree with the scalar reference table
// within the documented exactness contract — bit-identical for LInf,
// Mass, WidenToDouble and Int8WeightedCodeSum, FMA-contraction-close
// for the accumulating kernels, within the mass-derived rsqrt bound
// for the fast Hellinger kernel — and (b) produce *bit-identical rank
// orderings* against a corpus (ordering is what the rerank-protected
// scans actually consume). The resolver must never select a tier the
// host cannot execute, no matter what CBIX_FORCE_ISA says, and the
// process-wide table must initialize exactly once.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "simd/dispatch.h"
#include "util/random.h"

namespace cbix {
namespace {

using simd::IsaTier;
using simd::KernelTable;

constexpr IsaTier kAllTiers[] = {IsaTier::kScalar, IsaTier::kAvx2,
                                 IsaTier::kAvx512, IsaTier::kNeon};

/// Tiers this binary can actually execute here and now.
std::vector<IsaTier> RunnableTiers() {
  std::vector<IsaTier> out;
  for (IsaTier tier : kAllTiers) {
    if (simd::TierCompiled(tier) && simd::TierSupported(tier)) {
      out.push_back(tier);
    }
  }
  return out;
}

std::vector<float> RandomFloats(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (auto& x : out) {
    const double u = rng.NextDouble();
    // Non-negative with exact zeros: valid histogram input for the
    // divide/sqrt kernels, and the zero-mass branches get exercised.
    x = u < 0.1 ? 0.0f : static_cast<float>(u);
  }
  return out;
}

/// Relative-tolerance comparison for the accumulating kernels: across
/// tiers only FMA contraction and lane-count differences may move the
/// result, both far below 1e-9 relative at these dimensions.
void ExpectClose(double got, double want, const char* what, size_t dim) {
  EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, std::fabs(want)))
      << what << " dim=" << dim;
}

TEST(SimdDispatch, EveryRunnableTierMatchesScalarContract) {
  const KernelTable* scalar = simd::TableForTier(IsaTier::kScalar);
  ASSERT_NE(scalar, nullptr);

  for (IsaTier tier : RunnableTiers()) {
    const KernelTable* t = simd::TableForTier(tier);
    ASSERT_NE(t, nullptr) << simd::TierName(tier);
    SCOPED_TRACE(simd::TierName(tier));

    // All lane remainders 0..7 twice over, plus multi-register strides.
    for (size_t dim : {0u,  1u,  2u,  3u,  5u,  7u,  8u,  9u,   13u,
                       15u, 16u, 17u, 23u, 31u, 32u, 33u, 100u, 257u}) {
      const std::vector<float> a = RandomFloats(dim, 11 * dim + 1);
      const std::vector<float> b = RandomFloats(dim, 13 * dim + 2);

      ExpectClose(t->l1(a.data(), b.data(), dim),
                  scalar->l1(a.data(), b.data(), dim), "l1", dim);
      ExpectClose(t->l2_squared(a.data(), b.data(), dim),
                  scalar->l2_squared(a.data(), b.data(), dim), "l2", dim);
      ExpectClose(t->chi_square(a.data(), b.data(), dim),
                  scalar->chi_square(a.data(), b.data(), dim), "chi", dim);
      ExpectClose(t->hellinger_squared_sum(a.data(), b.data(), dim),
                  scalar->hellinger_squared_sum(a.data(), b.data(), dim),
                  "hellinger", dim);
      ExpectClose(t->norm_squared(a.data(), dim),
                  scalar->norm_squared(a.data(), dim), "norm_sq", dim);

      // Bit-identical by construction on every tier.
      EXPECT_EQ(t->linf(a.data(), b.data(), dim),
                scalar->linf(a.data(), b.data(), dim))
          << "linf dim=" << dim;
      EXPECT_EQ(t->mass(a.data(), dim), scalar->mass(a.data(), dim))
          << "mass dim=" << dim;
      std::vector<double> wide_got(dim + 1, -1.0), wide_want(dim + 1, -1.0);
      t->widen_to_double(a.data(), dim, wide_got.data());
      scalar->widen_to_double(a.data(), dim, wide_want.data());
      EXPECT_EQ(wide_got, wide_want) << "widen dim=" << dim;

      // Pair kernels agree with scalar within tolerance...
      double dot_a = 0.0, dot_b = 0.0, norm_r = 0.0;
      double ref_dot = 0.0, ref_norm = 0.0;
      t->dot_and_norm_sq(a.data(), b.data(), dim, &dot_a, &norm_r);
      scalar->dot_and_norm_sq(a.data(), b.data(), dim, &ref_dot, &ref_norm);
      ExpectClose(dot_a, ref_dot, "dot", dim);
      ExpectClose(norm_r, ref_norm, "dot_norm", dim);
      t->min_and_mass(a.data(), b.data(), dim, &dot_a, &norm_r);
      scalar->min_and_mass(a.data(), b.data(), dim, &ref_dot, &ref_norm);
      ExpectClose(dot_a, ref_dot, "min", dim);
      ExpectClose(norm_r, ref_norm, "min_mass", dim);

      // ...and the fused pair kernel is bit-identical to two single
      // calls WITHIN the tier (the within-build contract RankBlock
      // tests rely on).
      double pair_a = 0.0, pair_b = 0.0, pair_norm = 0.0;
      t->dot_pair_and_norm_sq(a.data(), b.data(), a.data(), dim, &pair_a,
                              &pair_b, &pair_norm);
      double one_dot = 0.0, one_norm = 0.0;
      t->dot_and_norm_sq(a.data(), a.data(), dim, &one_dot, &one_norm);
      EXPECT_EQ(pair_a, one_dot) << "pair[0] dim=" << dim;
      EXPECT_EQ(pair_norm, one_norm) << "pair norm dim=" << dim;
      t->dot_and_norm_sq(b.data(), a.data(), dim, &one_dot, &one_norm);
      EXPECT_EQ(pair_b, one_dot) << "pair[1] dim=" << dim;

      // Wide L2 must be bit-identical to float L2 within the tier
      // (operand widening is exact).
      const std::vector<double> wa(a.begin(), a.end());
      const std::vector<double> wb(b.begin(), b.end());
      EXPECT_EQ(t->l2_squared_wide(wa.data(), wb.data(), dim),
                t->l2_squared(a.data(), b.data(), dim))
          << "wide dim=" << dim;
    }
  }
}

TEST(SimdDispatch, Int8WeightedCodeSumBitIdenticalAcrossTiers) {
  const KernelTable* scalar = simd::TableForTier(IsaTier::kScalar);
  ASSERT_NE(scalar, nullptr);
  Rng rng(99);
  for (size_t n : {0u, 1u, 15u, 16u, 17u, 64u, 100u, 256u, 1000u, 4096u}) {
    std::vector<int16_t> w_q(n);
    std::vector<uint8_t> codes(n);
    for (size_t i = 0; i < n; ++i) {
      // Full-range weights and codes: the drain cadence of the integer
      // kernels must never overflow an i32 lane.
      w_q[i] = static_cast<int16_t>(rng.NextBelow(65535) - 32767);
      codes[i] = static_cast<uint8_t>(rng.NextBelow(256));
    }
    const int64_t want =
        scalar->int8_weighted_code_sum(w_q.data(), codes.data(), n);
    for (IsaTier tier : RunnableTiers()) {
      const int64_t got = simd::TableForTier(tier)->int8_weighted_code_sum(
          w_q.data(), codes.data(), n);
      EXPECT_EQ(got, want) << simd::TierName(tier) << " n=" << n;
    }
  }
}

TEST(SimdDispatch, FastHellingerWithinMassDerivedBoundAndExactTail) {
  // Per-element relative sqrt error of the rsqrt+Newton kernel is
  // <= eps = 1e-6 (documented in dispatch.h). Expanding the squared
  // sum, the key error is bounded by 2*eps*sqrt(2*(Ma+Mb)*key) +
  // 2*eps^2*(Ma+Mb), with Ma/Mb the histogram masses.
  constexpr double kEps = 1e-6;
  for (IsaTier tier : RunnableTiers()) {
    const KernelTable* t = simd::TableForTier(tier);
    SCOPED_TRACE(simd::TierName(tier));
    for (size_t dim : {1u, 7u, 8u, 16u, 33u, 128u, 257u}) {
      const std::vector<float> a = RandomFloats(dim, 3 * dim + 5);
      // Near-duplicate row: tiny exact keys against large masses is
      // exactly where a sloppy approximate kernel would betray the
      // bound.
      std::vector<float> b = a;
      if (dim > 2) b[dim / 2] += 0.25f;

      const float* const others[] = {b.data(), a.data()};
      for (const float* other : others) {
        const double exact = t->hellinger_squared_sum(a.data(), other, dim);
        const double fast =
            t->hellinger_squared_sum_fast(a.data(), other, dim);
        const double masses =
            t->mass(a.data(), dim) + t->mass(other, dim);
        const double bound = 2.0 * kEps * std::sqrt(2.0 * masses * exact) +
                             2.0 * kEps * kEps * masses;
        EXPECT_GE(fast, 0.0) << "dim=" << dim;
        EXPECT_LE(std::fabs(fast - exact), bound) << "dim=" << dim;
      }
    }
  }
}

TEST(SimdDispatch, RankOrderingsBitIdenticalAcrossTiers) {
  // Order a 400-row corpus by each ordering kernel's keys on every
  // runnable tier; the resulting id permutation must match the scalar
  // tier exactly. Random rows keep key gaps far above the ~1e-16 FMA
  // contraction, so identical orderings are the *expected* outcome,
  // not a coin flip.
  const KernelTable* scalar = simd::TableForTier(IsaTier::kScalar);
  ASSERT_NE(scalar, nullptr);
  constexpr size_t kRows = 400;
  constexpr size_t kDim = 48;
  const std::vector<float> corpus = RandomFloats(kRows * kDim, 1234);
  const std::vector<float> q = RandomFloats(kDim, 4321);

  using KeyFn = double (*)(const float*, const float*, size_t);
  const auto order_by = [&](KeyFn fn) {
    std::vector<double> keys(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      keys[i] = fn(q.data(), corpus.data() + i * kDim, kDim);
    }
    std::vector<uint32_t> ids(kRows);
    std::iota(ids.begin(), ids.end(), 0u);
    std::sort(ids.begin(), ids.end(), [&](uint32_t x, uint32_t y) {
      return keys[x] != keys[y] ? keys[x] < keys[y] : x < y;
    });
    return ids;
  };

  for (IsaTier tier : RunnableTiers()) {
    const KernelTable* t = simd::TableForTier(tier);
    SCOPED_TRACE(simd::TierName(tier));
    EXPECT_EQ(order_by(t->l1), order_by(scalar->l1));
    EXPECT_EQ(order_by(t->l2_squared), order_by(scalar->l2_squared));
    EXPECT_EQ(order_by(t->linf), order_by(scalar->linf));
    EXPECT_EQ(order_by(t->chi_square), order_by(scalar->chi_square));
    EXPECT_EQ(order_by(t->hellinger_squared_sum),
              order_by(scalar->hellinger_squared_sum));
    // The fast Hellinger kernel must reproduce the EXACT scalar
    // ordering here too: random-row key gaps dwarf the 1e-6 bound.
    EXPECT_EQ(order_by(t->hellinger_squared_sum_fast),
              order_by(scalar->hellinger_squared_sum));
  }
}

TEST(SimdDispatch, ResolverNeverSelectsAnUnrunnableTier) {
  const IsaTier best = simd::BestSupportedTier();
  EXPECT_TRUE(simd::TierCompiled(best));
  EXPECT_TRUE(simd::TierSupported(best));

  const char* const forces[] = {"scalar", "avx2", "avx512", "neon",
                                "garbage", "AVX2", "", nullptr};
  for (const char* force : forces) {
    const IsaTier got = simd::ResolveTier(force);
    SCOPED_TRACE(force == nullptr ? "(null)" : force);
    // Whatever was asked for, the result is always executable here.
    EXPECT_TRUE(simd::TierCompiled(got));
    EXPECT_TRUE(simd::TierSupported(got));
    if (force != nullptr && std::string(force) == simd::TierName(got)) {
      continue;  // honored a runnable forced tier
    }
    // Anything else — unknown, wrong case, empty, null, or a known
    // tier this build/host can't run — falls back to the best tier.
    EXPECT_EQ(got, best);
  }

  // A forced tier that IS runnable must be honored exactly, even when
  // a better one exists (that's the whole point of the override).
  for (IsaTier tier : RunnableTiers()) {
    EXPECT_EQ(simd::ResolveTier(simd::TierName(tier)), tier);
  }
}

TEST(SimdDispatch, TableInitializesExactlyOnceAndIsStable) {
  const KernelTable& first = simd::ActiveKernels();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(&simd::ActiveKernels(), &first);
  }
  EXPECT_EQ(simd::detail::InitCount(), 1);
  // The active table is the one the active tier names, and the active
  // tier is executable.
  EXPECT_EQ(simd::TableForTier(simd::ActiveTier()), &first);
  EXPECT_TRUE(simd::TierCompiled(simd::ActiveTier()));
  EXPECT_TRUE(simd::TierSupported(simd::ActiveTier()));
}

TEST(SimdDispatch, TierNamesRoundTrip) {
  for (IsaTier tier : kAllTiers) {
    const std::string name = simd::TierName(tier);
    EXPECT_FALSE(name.empty());
    if (simd::TierCompiled(tier) && simd::TierSupported(tier)) {
      EXPECT_EQ(simd::ResolveTier(name.c_str()), tier) << name;
    }
  }
  // Exactly one of the per-TU tables backs each compiled tier.
  EXPECT_NE(simd::detail::ScalarTable(), nullptr);
  EXPECT_EQ(simd::TierCompiled(IsaTier::kAvx2),
            simd::detail::Avx2Table() != nullptr);
  EXPECT_EQ(simd::TierCompiled(IsaTier::kAvx512),
            simd::detail::Avx512Table() != nullptr);
  EXPECT_EQ(simd::TierCompiled(IsaTier::kNeon),
            simd::detail::NeonTable() != nullptr);
}

}  // namespace
}  // namespace cbix
