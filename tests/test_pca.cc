#include "features/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace cbix {
namespace {

/// Data lying exactly on a line in 3-D (one principal direction).
std::vector<Vec> LineData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> out;
  for (size_t i = 0; i < n; ++i) {
    const float t = static_cast<float>(rng.Gaussian());
    out.push_back({1.0f + 2.0f * t, 2.0f - 1.0f * t, 0.5f + 0.5f * t});
  }
  return out;
}

TEST(PcaTest, RejectsDegenerateInputs) {
  Pca pca;
  EXPECT_EQ(pca.Fit({}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(pca.Fit({{1.0f}}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(pca.Fit({{1.0f, 2.0f}, {1.0f}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(PcaTest, OneDominantComponentOnLineData) {
  Pca pca;
  ASSERT_TRUE(pca.Fit(LineData(300, 1)).ok());
  ASSERT_EQ(pca.eigenvalues().size(), 3u);
  EXPECT_GT(pca.eigenvalues()[0], 1.0);
  EXPECT_NEAR(pca.eigenvalues()[1], 0.0, 1e-6);
  EXPECT_NEAR(pca.ExplainedVariance(1), 1.0, 1e-6);
  EXPECT_EQ(pca.ComponentsForVariance(0.99), 1u);
}

TEST(PcaTest, ProjectionReconstructionExactOnSubspaceData) {
  Pca pca;
  const auto data = LineData(200, 2);
  ASSERT_TRUE(pca.Fit(data).ok());
  for (size_t i = 0; i < 10; ++i) {
    const Vec proj = pca.Project(data[i], 1);
    ASSERT_EQ(proj.size(), 1u);
    const Vec rec = pca.Reconstruct(proj);
    ASSERT_EQ(rec.size(), 3u);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(rec[j], data[i][j], 1e-3);
    }
  }
}

TEST(PcaTest, FullProjectionIsLossless) {
  Rng rng(3);
  std::vector<Vec> data;
  for (int i = 0; i < 100; ++i) {
    Vec v(5);
    for (auto& x : v) x = static_cast<float>(rng.NextDouble());
    data.push_back(v);
  }
  Pca pca;
  ASSERT_TRUE(pca.Fit(data).ok());
  for (int i = 0; i < 10; ++i) {
    const Vec rec = pca.Reconstruct(pca.Project(data[i], 5));
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(rec[j], data[i][j], 1e-4);
    }
  }
}

TEST(PcaTest, ExplainedVarianceMonotone) {
  Rng rng(4);
  std::vector<Vec> data;
  for (int i = 0; i < 150; ++i) {
    Vec v(6);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    data.push_back(v);
  }
  Pca pca;
  ASSERT_TRUE(pca.Fit(data).ok());
  double prev = 0.0;
  for (size_t k = 1; k <= 6; ++k) {
    const double ev = pca.ExplainedVariance(k);
    EXPECT_GE(ev, prev - 1e-12);
    prev = ev;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(PcaTest, ReconstructionErrorDecreasesWithK) {
  Rng rng(5);
  std::vector<Vec> data;
  for (int i = 0; i < 200; ++i) {
    // Anisotropic Gaussian: distinct variances per dimension.
    Vec v(4);
    v[0] = static_cast<float>(rng.Gaussian(0, 4.0));
    v[1] = static_cast<float>(rng.Gaussian(0, 2.0));
    v[2] = static_cast<float>(rng.Gaussian(0, 1.0));
    v[3] = static_cast<float>(rng.Gaussian(0, 0.5));
    data.push_back(v);
  }
  Pca pca;
  ASSERT_TRUE(pca.Fit(data).ok());
  auto mean_error = [&](size_t k) {
    double total = 0;
    for (const auto& v : data) {
      const Vec rec = pca.Reconstruct(pca.Project(v, k));
      for (size_t j = 0; j < v.size(); ++j) {
        total += (rec[j] - v[j]) * (rec[j] - v[j]);
      }
    }
    return total;
  };
  double prev = mean_error(1);
  for (size_t k = 2; k <= 4; ++k) {
    const double err = mean_error(k);
    EXPECT_LE(err, prev + 1e-6);
    prev = err;
  }
  EXPECT_NEAR(mean_error(4), 0.0, 1e-3);
}

TEST(PcaTest, EigenvaluesMatchAxisVariances) {
  Rng rng(6);
  std::vector<Vec> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back({static_cast<float>(rng.Gaussian(0, 3.0)),
                    static_cast<float>(rng.Gaussian(0, 1.0))});
  }
  Pca pca;
  ASSERT_TRUE(pca.Fit(data).ok());
  EXPECT_NEAR(pca.eigenvalues()[0], 9.0, 0.4);
  EXPECT_NEAR(pca.eigenvalues()[1], 1.0, 0.05);
}

}  // namespace
}  // namespace cbix
