#include "util/status.h"

#include <gtest/gtest.h>

namespace cbix {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "not_found: missing thing");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  const StatusCode codes[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,  StatusCode::kFailedPrecondition,
      StatusCode::kInternal,    StatusCode::kIoError,
      StatusCode::kCorruption,  StatusCode::kUnimplemented,
  };
  for (size_t i = 0; i < std::size(codes); ++i) {
    for (size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_NE(StatusCodeName(codes[i]), StatusCodeName(codes[j]));
    }
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::IoError("x"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(3);
  EXPECT_EQ(r.value_or(-1), 3);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::Ok();
}

Status ChainWithMacro(int x) {
  CBIX_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(ChainWithMacro(1).ok());
  EXPECT_EQ(ChainWithMacro(-1).code(), StatusCode::kOutOfRange);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("non-positive");
  return x;
}

Result<int> DoubleIt(int x) {
  CBIX_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusMacroTest, AssignOrReturnBindsValue) {
  Result<int> good = DoubleIt(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad = DoubleIt(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cbix
