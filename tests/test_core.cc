#include <gtest/gtest.h>

#include <cstdio>

#include "core/engine.h"
#include "core/feature_store.h"
#include "core/retrieval_metrics.h"
#include "corpus/corpus.h"

namespace cbix {
namespace {

// --------------------------------------------------------------------------
// FeatureStore

TEST(FeatureStoreTest, AddAssignsSequentialIds) {
  FeatureStore store;
  for (int i = 0; i < 5; ++i) {
    const auto id = store.Add({"img" + std::to_string(i), i, Vec{1.0f, 2.0f}});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(id.value(), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.feature_dim(), 2u);
  EXPECT_EQ(store.record(3).name, "img3");
  EXPECT_EQ(store.record(3).label, 3);
}

TEST(FeatureStoreTest, RejectsDimensionMismatch) {
  FeatureStore store;
  ASSERT_TRUE(store.Add({"a", 0, Vec{1, 2, 3}}).ok());
  EXPECT_EQ(store.Add({"b", 0, Vec{1, 2}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Add({"c", 0, Vec{}}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FeatureStoreTest, SerializeRoundTrip) {
  FeatureStore store;
  ASSERT_TRUE(store.Add({"alpha", 3, Vec{0.5f, -1.0f}}).ok());
  ASSERT_TRUE(store.Add({"beta", -1, Vec{1.5f, 2.0f}}).ok());
  std::vector<uint8_t> bytes;
  store.Serialize(&bytes);

  FeatureStore restored;
  ASSERT_TRUE(restored.Deserialize(bytes).ok());
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.record(0).name, "alpha");
  EXPECT_EQ(restored.record(0).label, 3);
  EXPECT_EQ(restored.record(1).features, (Vec{1.5f, 2.0f}));
}

TEST(FeatureStoreTest, DeserializeRejectsGarbage) {
  FeatureStore store;
  EXPECT_FALSE(store.Deserialize({1, 2, 3}).ok());
}

TEST(FeatureStoreTest, AllFeaturesAndLabels) {
  FeatureStore store;
  ASSERT_TRUE(store.Add({"a", 1, Vec{1.0f}}).ok());
  ASSERT_TRUE(store.Add({"b", 2, Vec{2.0f}}).ok());
  EXPECT_EQ(store.AllFeatures().size(), 2u);
  EXPECT_EQ(store.AllLabels(), (std::vector<int32_t>{1, 2}));
}

// --------------------------------------------------------------------------
// Retrieval metrics

TEST(RetrievalMetricsTest, PrecisionAtK) {
  const std::vector<int32_t> labels{1, 1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(PrecisionAtK(labels, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(labels, 1, 2), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(labels, 1, 4), 0.75);
  EXPECT_DOUBLE_EQ(PrecisionAtK(labels, 1, 5), 0.6);
  EXPECT_DOUBLE_EQ(PrecisionAtK(labels, 0, 5), 0.4);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, 1, 5), 0.0);
}

TEST(RetrievalMetricsTest, PrecisionAtKBeyondListUsesListLength) {
  const std::vector<int32_t> labels{1, 1};
  EXPECT_DOUBLE_EQ(PrecisionAtK(labels, 1, 10), 1.0);
}

TEST(RetrievalMetricsTest, RecallAtK) {
  const std::vector<int32_t> labels{1, 0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(RecallAtK(labels, 1, 3, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(labels, 1, 3, 5), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(labels, 1, 0, 5), 0.0);
}

TEST(RetrievalMetricsTest, AveragePrecisionPerfectRanking) {
  EXPECT_DOUBLE_EQ(AveragePrecision({1, 1, 0, 0}, 1, 2), 1.0);
}

TEST(RetrievalMetricsTest, AveragePrecisionKnownValue) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(AveragePrecision({1, 0, 1, 0}, 1, 2), 5.0 / 6.0, 1e-12);
}

TEST(RetrievalMetricsTest, AverageNormalizedRankExtremes) {
  // Perfect: relevant items first -> 0.
  EXPECT_DOUBLE_EQ(AverageNormalizedRank({1, 1, 0, 0}, 1), 0.0);
  // Worst: relevant items last.
  const double worst = AverageNormalizedRank({0, 0, 1, 1}, 1);
  EXPECT_GT(worst, 0.4);
  EXPECT_DOUBLE_EQ(AverageNormalizedRank({0, 0, 0}, 1), 0.0);
}

TEST(RetrievalMetricsTest, AccumulatorAverages) {
  RetrievalQualityAccumulator acc;
  acc.AddQuery({1, 1, 0, 0}, 1, 2, 2);  // perfect
  acc.AddQuery({0, 0, 1, 1}, 1, 2, 2);  // worst
  EXPECT_EQ(acc.query_count(), 2u);
  EXPECT_DOUBLE_EQ(acc.MeanPrecisionAtK(), 0.5);
  EXPECT_GT(acc.MeanAveragePrecision(), 0.2);
  EXPECT_LT(acc.MeanAveragePrecision(), 0.8);
}

// --------------------------------------------------------------------------
// Engine integration

class EngineTest : public ::testing::Test {
 protected:
  static FeatureExtractor SmallExtractor() {
    // Small fast pipeline for tests.
    auto ex = MakeSingleDescriptorExtractor("color_hist", 64);
    EXPECT_TRUE(ex.ok());
    return ex.value();
  }

  static std::vector<LabeledImage> SmallCorpus() {
    CorpusSpec spec;
    spec.num_classes = 5;
    spec.images_per_class = 4;
    spec.width = spec.height = 48;
    return CorpusGenerator(spec).Generate();
  }
};

TEST_F(EngineTest, AddAndQuerySelf) {
  CbirEngine engine(SmallExtractor());
  const auto corpus = SmallCorpus();
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }
  EXPECT_EQ(engine.size(), corpus.size());

  // Querying with a database image must return that image first at
  // distance ~0.
  const auto result = engine.QueryKnn(corpus[7].image, 5);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 5u);
  EXPECT_EQ(result->at(0).name, corpus[7].name);
  EXPECT_NEAR(result->at(0).distance, 0.0, 1e-9);
}

TEST_F(EngineTest, AllIndexKindsAgree) {
  const auto corpus = SmallCorpus();
  std::vector<std::vector<CbirEngine::Match>> results;
  for (IndexKind kind : {IndexKind::kLinearScan, IndexKind::kVpTree,
                         IndexKind::kKdTree, IndexKind::kRTree}) {
    EngineConfig config;
    config.index_kind = kind;
    config.metric = MetricKind::kL1;
    CbirEngine engine(SmallExtractor(), config);
    for (const auto& item : corpus) {
      ASSERT_TRUE(
          engine.AddImage(item.image, item.name, item.class_id).ok());
    }
    const auto result = engine.QueryKnn(corpus[3].image, 8);
    ASSERT_TRUE(result.ok()) << IndexKindName(kind);
    results.push_back(result.value());
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].size(), results[0].size());
    for (size_t j = 0; j < results[0].size(); ++j) {
      EXPECT_EQ(results[i][j].id, results[0][j].id) << "index kind " << i;
    }
  }
}

TEST_F(EngineTest, RangeQueryReturnsOnlyWithinRadius) {
  CbirEngine engine(SmallExtractor());
  const auto corpus = SmallCorpus();
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }
  const auto result = engine.QueryRange(corpus[0].image, 0.25);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->size(), 1u);
  for (const auto& match : result.value()) {
    EXPECT_LE(match.distance, 0.25);
  }
  EXPECT_EQ(result->at(0).id, 0u);
}

TEST_F(EngineTest, InvalidIndexMetricComboRejected) {
  EngineConfig config;
  config.index_kind = IndexKind::kVpTree;
  config.metric = MetricKind::kChiSquare;  // not a metric
  CbirEngine engine(SmallExtractor(), config);
  CorpusSpec spec;
  spec.num_classes = 1;
  spec.images_per_class = 2;
  spec.width = spec.height = 32;
  const auto corpus = CorpusGenerator(spec).Generate();
  ASSERT_TRUE(engine.AddImage(corpus[0].image, "a", 0).ok());
  const auto result = engine.QueryKnn(corpus[1].image, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, ChiSquareAllowedWithLinearScan) {
  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = MetricKind::kChiSquare;
  CbirEngine engine(SmallExtractor(), config);
  const auto corpus = SmallCorpus();
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.AddImage(corpus[i].image, corpus[i].name, 0).ok());
  }
  const auto result = engine.QueryKnn(corpus[0].image, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->at(0).id, 0u);
}

TEST_F(EngineTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "cbix_engine_test.db";
  const auto corpus = SmallCorpus();
  {
    CbirEngine engine(SmallExtractor());
    for (const auto& item : corpus) {
      ASSERT_TRUE(
          engine.AddImage(item.image, item.name, item.class_id).ok());
    }
    ASSERT_TRUE(engine.Save(path).ok());
  }
  CbirEngine restored(SmallExtractor());
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.size(), corpus.size());
  const auto result = restored.QueryKnn(corpus[2].image, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->at(0).name, corpus[2].name);
  std::remove(path.c_str());
}

TEST_F(EngineTest, LoadRejectsMismatchedExtractor) {
  const std::string path = ::testing::TempDir() + "cbix_engine_dim.db";
  {
    CbirEngine engine(SmallExtractor());
    const auto corpus = SmallCorpus();
    ASSERT_TRUE(engine.AddImage(corpus[0].image, "x", 0).ok());
    ASSERT_TRUE(engine.Save(path).ok());
  }
  // A different extractor with a different dimension must be rejected.
  auto other = MakeSingleDescriptorExtractor("color_moments", 64);
  ASSERT_TRUE(other.ok());
  CbirEngine restored(other.value());
  EXPECT_EQ(restored.Load(path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST_F(EngineTest, StatsReportPruning) {
  EngineConfig config;
  config.index_kind = IndexKind::kVpTree;
  config.metric = MetricKind::kL1;
  CbirEngine engine(SmallExtractor(), config);
  const auto corpus = SmallCorpus();
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }
  SearchStats stats;
  const auto result = engine.QueryKnn(corpus[0].image, 3, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.distance_evals, 0u);
}

TEST_F(EngineTest, EmptyEngineQueriesReturnEmpty) {
  CbirEngine engine(SmallExtractor());
  CorpusSpec spec;
  spec.num_classes = 1;
  spec.images_per_class = 1;
  spec.width = spec.height = 32;
  const auto item = CorpusGenerator(spec).MakeInstance(0, 0);
  const auto knn = engine.QueryKnn(item.image, 5);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn->empty());
}

TEST_F(EngineTest, QueryByVectorMatchesQueryByImage) {
  CbirEngine engine(SmallExtractor());
  const auto corpus = SmallCorpus();
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }
  const Vec features = engine.ExtractFeatures(corpus[5].image);
  const auto by_vec = engine.QueryKnnByVector(features, 4);
  const auto by_img = engine.QueryKnn(corpus[5].image, 4);
  ASSERT_TRUE(by_vec.ok());
  ASSERT_TRUE(by_img.ok());
  ASSERT_EQ(by_vec->size(), by_img->size());
  for (size_t i = 0; i < by_vec->size(); ++i) {
    EXPECT_EQ(by_vec->at(i).id, by_img->at(i).id);
  }
}

TEST_F(EngineTest, RetrievalFindsClassMates) {
  // End-to-end quality: with colour histograms on the synthetic corpus,
  // the nearest neighbours of a query should be dominated by its class.
  CbirEngine engine(SmallExtractor());
  const auto corpus = SmallCorpus();
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }
  RetrievalQualityAccumulator acc;
  for (size_t qi = 0; qi < corpus.size(); ++qi) {
    const auto result =
        engine.QueryKnn(corpus[qi].image, corpus.size());
    ASSERT_TRUE(result.ok());
    std::vector<int32_t> labels;
    for (const auto& match : result.value()) {
      if (match.id == qi) continue;  // drop self-match
      labels.push_back(match.label);
    }
    acc.AddQuery(labels, corpus[qi].class_id, 3, 3);
  }
  // Random guessing would give P@3 ~ 3/19 ≈ 0.16; features must beat it
  // by a wide margin.
  EXPECT_GT(acc.MeanPrecisionAtK(), 0.45);
}

}  // namespace
}  // namespace cbix
