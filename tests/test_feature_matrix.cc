#include "util/feature_matrix.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/random.h"

namespace cbix {
namespace {

TEST(FeatureMatrixTest, EmptyMatrix) {
  FeatureMatrix m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.dim(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.MemoryBytes(), 0u);
  EXPECT_TRUE(m.ToVectors().empty());
}

TEST(FeatureMatrixTest, AppendFixesDimensionAndPreservesValues) {
  FeatureMatrix m;
  m.AppendRow(Vec{1.0f, 2.0f, 3.0f});
  m.AppendRow(Vec{4.0f, 5.0f, 6.0f});
  EXPECT_EQ(m.dim(), 3u);
  EXPECT_EQ(m.count(), 2u);
  EXPECT_EQ(m.RowVec(0), (Vec{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(m.RowVec(1), (Vec{4.0f, 5.0f, 6.0f}));
}

TEST(FeatureMatrixTest, RowsAre32ByteAlignedForEveryDim) {
  for (size_t dim : {1u, 7u, 8u, 9u, 33u, 257u}) {
    FeatureMatrix m(dim);
    for (int r = 0; r < 5; ++r) m.AppendRow(Vec(dim, 1.0f));
    EXPECT_EQ(m.stride() % (FeatureMatrix::kAlignment / sizeof(float)), 0u);
    EXPECT_GE(m.stride(), dim);
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(reinterpret_cast<uintptr_t>(m.row(r)) %
                    FeatureMatrix::kAlignment,
                0u)
          << "dim=" << dim << " row=" << r;
    }
  }
}

TEST(FeatureMatrixTest, PaddingLanesAreZero) {
  FeatureMatrix m(3);  // stride 8 -> 5 padding floats
  m.AppendRow(Vec{1.0f, 2.0f, 3.0f});
  for (size_t i = m.dim(); i < m.stride(); ++i) {
    EXPECT_EQ(m.row(0)[i], 0.0f);
  }
}

TEST(FeatureMatrixTest, FromVectorsRoundTrips) {
  Rng rng(42);
  std::vector<Vec> rows;
  for (int r = 0; r < 37; ++r) {
    Vec v(13);
    for (auto& x : v) x = static_cast<float>(rng.NextDouble());
    rows.push_back(v);
  }
  const FeatureMatrix m = FeatureMatrix::FromVectors(rows);
  EXPECT_EQ(m.count(), rows.size());
  EXPECT_EQ(m.dim(), 13u);
  EXPECT_EQ(m.ToVectors(), rows);
}

TEST(FeatureMatrixTest, CopyAndMoveSemantics) {
  FeatureMatrix m(4);
  m.AppendRow(Vec{1, 2, 3, 4});
  m.AppendRow(Vec{5, 6, 7, 8});

  FeatureMatrix copy(m);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_EQ(copy.RowVec(1), m.RowVec(1));
  EXPECT_NE(copy.row(0), m.row(0));  // deep copy

  FeatureMatrix moved(std::move(copy));
  EXPECT_EQ(moved.count(), 2u);
  EXPECT_EQ(moved.RowVec(0), (Vec{1, 2, 3, 4}));
  EXPECT_EQ(copy.count(), 0u);  // NOLINT(bugprone-use-after-move)

  FeatureMatrix assigned;
  assigned = moved;
  EXPECT_EQ(assigned.count(), 2u);
  assigned = std::move(moved);
  EXPECT_EQ(assigned.count(), 2u);
}

TEST(FeatureMatrixTest, GrowthKeepsEarlierRows) {
  FeatureMatrix m(5);
  std::vector<Vec> expect;
  Rng rng(7);
  for (int r = 0; r < 100; ++r) {
    Vec v(5);
    for (auto& x : v) x = static_cast<float>(rng.NextDouble());
    m.AppendRow(v);
    expect.push_back(v);
  }
  EXPECT_EQ(m.ToVectors(), expect);
  EXPECT_GT(m.MemoryBytes(), 100 * 5 * sizeof(float));
}

TEST(FeatureMatrixTest, ClearResets) {
  FeatureMatrix m(2);
  m.AppendRow(Vec{1, 2});
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.dim(), 0u);
  // Reusable with a new dimension after Clear.
  m.AppendRow(Vec{1, 2, 3});
  EXPECT_EQ(m.dim(), 3u);
}

}  // namespace
}  // namespace cbix
