// Tests for the pre-processing additions: median filter, histogram
// equalization, and the engine's parallel batch ingestion.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "corpus/corpus.h"
#include "image/filters.h"
#include "util/random.h"

namespace cbix {
namespace {

TEST(MedianFilterTest, ConstantImageUnchanged) {
  ImageF img(7, 7, 1, 0.4f);
  const ImageF out = MedianFilter(img, 3);
  for (float v : out.data()) EXPECT_EQ(v, 0.4f);
}

TEST(MedianFilterTest, RemovesSaltAndPepperImpulse) {
  ImageF img(9, 9, 1, 0.5f);
  img.at(4, 4) = 1.0f;  // isolated impulse
  img.at(2, 7) = 0.0f;
  const ImageF out = MedianFilter(img, 3);
  EXPECT_EQ(out.at(4, 4), 0.5f);
  EXPECT_EQ(out.at(2, 7), 0.5f);
}

TEST(MedianFilterTest, PreservesStepEdge) {
  // Unlike linear blur, a median keeps a hard edge hard.
  ImageF img(10, 10, 1);
  for (int y = 0; y < 10; ++y) {
    for (int x = 5; x < 10; ++x) img.at(x, y) = 1.0f;
  }
  const ImageF out = MedianFilter(img, 3);
  for (int y = 1; y < 9; ++y) {
    EXPECT_EQ(out.at(3, y), 0.0f);
    EXPECT_EQ(out.at(6, y), 1.0f);
  }
}

TEST(MedianFilterTest, SizeOneIsIdentity) {
  Rng rng(1);
  ImageF img(6, 6, 2);
  for (auto& v : img.data()) v = static_cast<float>(rng.NextDouble());
  EXPECT_EQ(MedianFilter(img, 1), img);
}

TEST(EqualizeHistogramTest, AlreadyUniformIsNearIdentity) {
  // A linear ramp is already uniform; equalization must keep the
  // ordering and roughly preserve values.
  ImageF img(256, 1, 1);
  for (int x = 0; x < 256; ++x) img.at(x, 0) = x / 255.0f;
  const ImageF out = EqualizeHistogram(img);
  for (int x = 1; x < 256; ++x) {
    EXPECT_GE(out.at(x, 0), out.at(x - 1, 0));  // monotone
  }
  EXPECT_NEAR(out.at(128, 0), 0.5f, 0.05f);
}

TEST(EqualizeHistogramTest, StretchesCompressedRange) {
  // All mass in [0.4, 0.6] must spread toward [0, 1].
  Rng rng(2);
  ImageF img(64, 64, 1);
  for (auto& v : img.data()) {
    v = 0.4f + 0.2f * static_cast<float>(rng.NextDouble());
  }
  const ImageF out = EqualizeHistogram(img);
  float lo = 1.0f, hi = 0.0f;
  for (float v : out.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.05f);
  EXPECT_GT(hi, 0.95f);
}

TEST(EqualizeHistogramTest, ConstantImageMapsToZero) {
  ImageF img(8, 8, 1, 0.7f);
  const ImageF out = EqualizeHistogram(img);
  // Single-bin image: cdf(min)==cdf(bin), remap sends it to 0.
  for (float v : out.data()) EXPECT_NEAR(v, 0.0f, 1e-6);
}

TEST(AddImagesParallelTest, MatchesSequentialInsertion) {
  CorpusSpec spec;
  spec.num_classes = 4;
  spec.images_per_class = 6;
  spec.width = spec.height = 48;
  const auto corpus = CorpusGenerator(spec).Generate();
  auto extractor = MakeSingleDescriptorExtractor("color_hist", 48);
  ASSERT_TRUE(extractor.ok());

  CbirEngine sequential(extractor.value());
  for (const auto& item : corpus) {
    ASSERT_TRUE(
        sequential.AddImage(item.image, item.name, item.class_id).ok());
  }

  CbirEngine parallel(extractor.value());
  std::vector<CbirEngine::BatchItem> batch;
  for (const auto& item : corpus) {
    batch.push_back({item.image, item.name, item.class_id});
  }
  const auto first_id = parallel.AddImagesParallel(std::move(batch), 4);
  ASSERT_TRUE(first_id.ok());
  EXPECT_EQ(first_id.value(), 0u);
  ASSERT_EQ(parallel.size(), sequential.size());

  // Identical stores: same names, labels, features in the same order.
  for (uint32_t id = 0; id < parallel.size(); ++id) {
    EXPECT_EQ(parallel.store().record(id).name,
              sequential.store().record(id).name);
    EXPECT_EQ(parallel.store().record(id).features,
              sequential.store().record(id).features);
  }

  // And identical query behaviour.
  const auto a = parallel.QueryKnn(corpus[5].image, 6);
  const auto b = sequential.QueryKnn(corpus[5].image, 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->at(i).id, b->at(i).id);
  }
}

TEST(AddImagesParallelTest, AppendsAfterExistingRecords) {
  CorpusSpec spec;
  spec.num_classes = 2;
  spec.images_per_class = 3;
  spec.width = spec.height = 32;
  const auto corpus = CorpusGenerator(spec).Generate();
  auto extractor = MakeSingleDescriptorExtractor("color_moments", 32);
  ASSERT_TRUE(extractor.ok());
  CbirEngine engine(extractor.value());
  ASSERT_TRUE(engine.AddImage(corpus[0].image, "first", 0).ok());

  std::vector<CbirEngine::BatchItem> batch;
  for (size_t i = 1; i < corpus.size(); ++i) {
    batch.push_back({corpus[i].image, corpus[i].name, corpus[i].class_id});
  }
  const auto first_id = engine.AddImagesParallel(std::move(batch), 2);
  ASSERT_TRUE(first_id.ok());
  EXPECT_EQ(first_id.value(), 1u);
  EXPECT_EQ(engine.size(), corpus.size());
}

TEST(AddImagesParallelTest, RejectsEmptyBatchAndEmptyImages) {
  auto extractor = MakeSingleDescriptorExtractor("color_moments", 32);
  ASSERT_TRUE(extractor.ok());
  CbirEngine engine(extractor.value());
  EXPECT_FALSE(engine.AddImagesParallel({}, 2).ok());
  std::vector<CbirEngine::BatchItem> batch;
  batch.push_back({ImageU8(), "empty", -1});
  EXPECT_FALSE(engine.AddImagesParallel(std::move(batch), 2).ok());
  EXPECT_EQ(engine.size(), 0u);
}

}  // namespace
}  // namespace cbix
