#include "index/vp_tree.h"

#include <gtest/gtest.h>

#include "corpus/vector_workload.h"
#include "distance/histogram_measures.h"
#include "distance/minkowski.h"
#include "index/linear_scan.h"
#include "util/serialize.h"

namespace cbix {
namespace {

std::vector<Vec> ClusteredData(size_t n, size_t dim, uint64_t seed = 3) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = n;
  spec.dim = dim;
  spec.seed = seed;
  return GenerateVectors(spec);
}

TEST(VpTreeTest, ShapeReflectsArityAndLeafSize) {
  VpTreeOptions o;
  o.arity = 4;
  o.leaf_size = 10;
  VpTree tree(std::make_shared<L2Distance>(), o);
  ASSERT_TRUE(tree.Build(ClusteredData(1000, 8)).ok());
  const auto shape = tree.Shape();
  EXPECT_GT(shape.internal_nodes, 0u);
  EXPECT_GT(shape.leaf_nodes, 0u);
  EXPECT_LE(shape.avg_leaf_fill, 10.0);
  EXPECT_GT(shape.avg_leaf_fill, 0.0);
  // 4-ary tree over 1000 points with leaves of <=10: depth well under 12.
  EXPECT_LT(shape.max_depth, 12u);
}

TEST(VpTreeTest, HigherArityShallowerTree) {
  const auto data = ClusteredData(2000, 8);
  VpTreeOptions o2;
  o2.arity = 2;
  VpTreeOptions o8;
  o8.arity = 8;
  VpTree t2(std::make_shared<L2Distance>(), o2);
  VpTree t8(std::make_shared<L2Distance>(), o8);
  ASSERT_TRUE(t2.Build(data).ok());
  ASSERT_TRUE(t8.Build(data).ok());
  EXPECT_GT(t2.Shape().max_depth, t8.Shape().max_depth);
}

TEST(VpTreeTest, BuildCountsDistanceEvaluations) {
  VpTree tree(std::make_shared<L2Distance>());
  ASSERT_TRUE(tree.Build(ClusteredData(500, 4)).ok());
  // Build must cost at least one distance per non-root element and at
  // most O(n log n + selection sampling).
  EXPECT_GE(tree.build_distance_evals(), 499u);
  EXPECT_LT(tree.build_distance_evals(), 500u * 60u);
}

TEST(VpTreeTest, WorksWithNonEuclideanMetric) {
  // Hellinger is a true metric on histograms: the VP-tree must stay
  // exact. This is the property KD/R-trees cannot offer.
  VectorWorkloadSpec spec;
  spec.count = 400;
  spec.dim = 8;
  std::vector<Vec> data = GenerateVectors(spec);
  for (auto& v : data) {
    float mass = 0;
    for (float x : v) mass += x;
    for (auto& x : v) x /= mass;
  }
  auto metric = std::make_shared<HellingerDistance>();
  VpTree tree(metric);
  LinearScanIndex reference(metric);
  ASSERT_TRUE(tree.Build(data).ok());
  ASSERT_TRUE(reference.Build(data).ok());
  for (int qi = 0; qi < 10; ++qi) {
    const Vec& q = data[qi * 37 % data.size()];
    const auto got = KnnSearch(tree, q, 8);
    const auto want = KnnSearch(reference, q, 8);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
    }
  }
}

TEST(VpTreeTest, SerializationRoundTripPreservesResults) {
  VpTreeOptions o;
  o.arity = 4;
  auto metric = std::make_shared<L2Distance>();
  VpTree tree(metric, o);
  const auto data = ClusteredData(300, 6);
  ASSERT_TRUE(tree.Build(data).ok());

  std::vector<uint8_t> bytes;
  tree.Serialize(&bytes);

  VpTree restored(metric);
  ASSERT_TRUE(restored.Deserialize(bytes).ok());
  EXPECT_EQ(restored.size(), tree.size());
  EXPECT_EQ(restored.dim(), tree.dim());
  EXPECT_EQ(restored.options().arity, 4);

  for (int qi = 0; qi < 5; ++qi) {
    const Vec& q = data[qi * 31 % data.size()];
    const auto a = KnnSearch(tree, q, 7);
    const auto b = KnnSearch(restored, q, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_NEAR(a[i].distance, b[i].distance, 1e-12);
    }
  }
}

TEST(VpTreeTest, DeserializeRejectsGarbage) {
  VpTree tree(std::make_shared<L2Distance>());
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(tree.Deserialize(garbage).ok());
}

// Hand-assembles a VP-tree file whose node child graph is caller
// supplied: one row, `nodes` entries, root 0. Every per-node tuple is
// (is_leaf, children); vantage ids are 0 and interval arrays are sized
// to the child list, so only the graph shape is corrupt.
std::vector<uint8_t> FileWithChildGraph(
    const std::vector<std::pair<bool, std::vector<int32_t>>>& nodes) {
  BinaryWriter writer;
  writer.Write<uint32_t>(0x56505452);  // "VPTR"
  writer.Write<uint32_t>(1);           // version
  writer.Write<uint32_t>(2);           // arity
  writer.Write<uint64_t>(4);           // leaf_size
  writer.Write<uint32_t>(0);           // selection = random
  writer.Write<uint64_t>(1);           // count
  writer.Write<uint64_t>(2);           // dim
  writer.WriteVector(Vec{1.0f, 2.0f});
  writer.Write<int32_t>(0);  // root
  writer.Write<uint64_t>(nodes.size());
  for (const auto& [is_leaf, children] : nodes) {
    writer.Write<uint8_t>(is_leaf ? 1 : 0);
    writer.Write<uint32_t>(0);  // vantage_id
    writer.WriteVector(is_leaf ? std::vector<uint32_t>{0}
                               : std::vector<uint32_t>{});
    writer.WriteVector(std::vector<double>(children.size(), 0.0));
    writer.WriteVector(std::vector<double>(children.size(), 1.0));
    writer.WriteVector(children);
  }
  return writer.TakeBuffer();
}

TEST(VpTreeTest, DeserializeRejectsSelfReferencingChild) {
  // A node listing itself as a child passes the per-node index-range
  // checks but recurses forever in search/Shape(); the tree walk must
  // reject it.
  VpTree tree(std::make_shared<L2Distance>());
  const auto bytes = FileWithChildGraph({{false, {0}}});
  const Status status = tree.Deserialize(bytes);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(VpTreeTest, DeserializeRejectsChildCycle) {
  VpTree tree(std::make_shared<L2Distance>());
  const auto bytes = FileWithChildGraph({{false, {1}}, {false, {0}}});
  EXPECT_EQ(tree.Deserialize(bytes).code(), StatusCode::kCorruption);
}

TEST(VpTreeTest, DeserializeRejectsDuplicatedChild) {
  // Two parents (or one parent twice) sharing a child is not a tree:
  // Shape() would double-count and search would double-report.
  VpTree tree(std::make_shared<L2Distance>());
  const auto bytes =
      FileWithChildGraph({{false, {1, 1}}, {true, {}}});
  EXPECT_EQ(tree.Deserialize(bytes).code(), StatusCode::kCorruption);
}

TEST(VpTreeTest, DeserializeAcceptsValidHandAssembledTree) {
  // The same assembler with a proper two-level tree must parse, proving
  // the rejection tests fail on the graph shape, not the format.
  VpTree tree(std::make_shared<L2Distance>());
  const auto bytes =
      FileWithChildGraph({{false, {1, 2}}, {true, {}}, {true, {}}});
  EXPECT_TRUE(tree.Deserialize(bytes).ok());
}

TEST(VpTreeTest, DeserializeRejectsCorruptedNodeIndices) {
  VpTree tree(std::make_shared<L2Distance>());
  ASSERT_TRUE(tree.Build(ClusteredData(100, 4)).ok());
  std::vector<uint8_t> bytes;
  tree.Serialize(&bytes);
  // Corrupt a byte deep in the node area and expect either a clean
  // rejection or a successful parse (the byte may land in a float), but
  // never a crash.
  for (size_t offset = bytes.size() - 40; offset < bytes.size();
       offset += 4) {
    std::vector<uint8_t> mutated = bytes;
    mutated[offset] = 0xff;
    VpTree victim(std::make_shared<L2Distance>());
    (void)victim.Deserialize(mutated);  // must not crash
  }
  SUCCEED();
}

TEST(VpTreeTest, SelectionPoliciesAllExact) {
  const auto data = ClusteredData(800, 8);
  LinearScanIndex reference(std::make_shared<L2Distance>());
  ASSERT_TRUE(reference.Build(data).ok());
  for (VantageSelection sel :
       {VantageSelection::kRandom, VantageSelection::kMaxSpread,
        VantageSelection::kCorner}) {
    VpTreeOptions o;
    o.selection = sel;
    VpTree tree(std::make_shared<L2Distance>(), o);
    ASSERT_TRUE(tree.Build(data).ok());
    const Vec q = data[123];
    const auto got = KnnSearch(tree, q, 10);
    const auto want = KnnSearch(reference, q, 10);
    ASSERT_EQ(got.size(), want.size()) << VantageSelectionName(sel);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << VantageSelectionName(sel);
    }
  }
}

TEST(VpTreeTest, DeterministicBuildGivenSeed) {
  const auto data = ClusteredData(500, 6);
  VpTreeOptions o;
  o.seed = 42;
  VpTree a(std::make_shared<L2Distance>(), o);
  VpTree b(std::make_shared<L2Distance>(), o);
  ASSERT_TRUE(a.Build(data).ok());
  ASSERT_TRUE(b.Build(data).ok());
  std::vector<uint8_t> bytes_a, bytes_b;
  a.Serialize(&bytes_a);
  b.Serialize(&bytes_b);
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(VpTreeTest, MemoryAccountingGrowsWithData) {
  VpTree small(std::make_shared<L2Distance>());
  VpTree large(std::make_shared<L2Distance>());
  ASSERT_TRUE(small.Build(ClusteredData(100, 8)).ok());
  ASSERT_TRUE(large.Build(ClusteredData(1000, 8)).ok());
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
  EXPECT_GT(small.MemoryBytes(), 100u * 8u * sizeof(float));
}

TEST(VpTreeTest, NameEncodesConfiguration) {
  VpTreeOptions o;
  o.arity = 6;
  o.selection = VantageSelection::kCorner;
  VpTree tree(std::make_shared<L1Distance>(), o);
  const std::string name = tree.Name();
  EXPECT_NE(name.find("m=6"), std::string::npos);
  EXPECT_NE(name.find("corner"), std::string::npos);
  EXPECT_NE(name.find("l1"), std::string::npos);
}

TEST(VpTreeTest, RangeRadiusCoveringAllReturnsEverything) {
  const auto data = ClusteredData(200, 4);
  VpTree tree(std::make_shared<L2Distance>());
  ASSERT_TRUE(tree.Build(data).ok());
  const auto all = RangeSearch(tree, data[0], 1e9);
  EXPECT_EQ(all.size(), data.size());
}

}  // namespace
}  // namespace cbix
