// Cross-module integration and failure-injection tests: the full
// image → codec → features → index → query pipeline, persistence under
// corruption, and engine equivalence across all index kinds (including
// the dynamic M-tree).

#include <gtest/gtest.h>

#include <cstdio>

#include "core/engine.h"
#include "core/relevance_feedback.h"
#include "corpus/corpus.h"
#include "image/pnm_codec.h"
#include "util/serialize.h"

namespace cbix {
namespace {

std::vector<LabeledImage> SmallCorpus(int classes = 6, int per_class = 5,
                                      int size = 48) {
  CorpusSpec spec;
  spec.num_classes = classes;
  spec.images_per_class = per_class;
  spec.width = spec.height = size;
  return CorpusGenerator(spec).Generate();
}

FeatureExtractor FastExtractor() {
  auto ex = MakeSingleDescriptorExtractor("color_hist", 48);
  EXPECT_TRUE(ex.ok());
  return ex.value();
}

TEST(IntegrationTest, FileRoundTripThroughEngine) {
  // Write corpus images as PPM files, index them from disk, query with
  // an in-memory image of the same scene: the codec must be lossless
  // enough that the file-loaded twin is the top match.
  const auto corpus = SmallCorpus(3, 2, 48);
  std::vector<std::string> paths;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const std::string path = ::testing::TempDir() + "cbix_integ_" +
                             std::to_string(i) + ".ppm";
    ASSERT_TRUE(WritePnm(path, corpus[i].image).ok());
    paths.push_back(path);
  }

  CbirEngine engine(FastExtractor());
  for (const auto& path : paths) {
    ASSERT_TRUE(engine.AddPnmFile(path).ok());
  }
  const auto result = engine.QueryKnn(corpus[4].image, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->at(0).name, paths[4]);
  EXPECT_NEAR(result->at(0).distance, 0.0, 1e-9);

  for (const auto& path : paths) std::remove(path.c_str());
}

TEST(IntegrationTest, AllFiveIndexKindsReturnIdenticalRankings) {
  const auto corpus = SmallCorpus();
  std::vector<std::vector<CbirEngine::Match>> all_results;
  for (IndexKind kind :
       {IndexKind::kLinearScan, IndexKind::kVpTree, IndexKind::kKdTree,
        IndexKind::kRTree, IndexKind::kMTree}) {
    EngineConfig config;
    config.index_kind = kind;
    config.metric = MetricKind::kL2;
    CbirEngine engine(FastExtractor(), config);
    for (const auto& item : corpus) {
      ASSERT_TRUE(
          engine.AddImage(item.image, item.name, item.class_id).ok());
    }
    const auto result = engine.QueryKnn(corpus[11].image, 10);
    ASSERT_TRUE(result.ok()) << IndexKindName(kind);
    all_results.push_back(result.value());
  }
  for (size_t i = 1; i < all_results.size(); ++i) {
    ASSERT_EQ(all_results[i].size(), all_results[0].size());
    for (size_t j = 0; j < all_results[0].size(); ++j) {
      EXPECT_EQ(all_results[i][j].id, all_results[0][j].id)
          << "index kind " << i << " rank " << j;
    }
  }
}

TEST(IntegrationTest, MTreeEngineValidatesMetric) {
  EngineConfig config;
  config.index_kind = IndexKind::kMTree;
  config.metric = MetricKind::kCosine;  // not a metric
  EXPECT_FALSE(MakeIndex(config).ok());
  config.metric = MetricKind::kHellinger;  // metric, non-Minkowski: OK
  EXPECT_TRUE(MakeIndex(config).ok());
}

TEST(IntegrationTest, RangeAndKnnConsistentThroughEngine) {
  // The radius equal to the k-th neighbour distance must return a
  // superset containing exactly the same leading ids.
  CbirEngine engine(FastExtractor());
  const auto corpus = SmallCorpus();
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }
  const auto knn = engine.QueryKnn(corpus[3].image, 7);
  ASSERT_TRUE(knn.ok());
  const double radius = knn->back().distance;
  const auto range = engine.QueryRange(corpus[3].image, radius);
  ASSERT_TRUE(range.ok());
  ASSERT_GE(range->size(), knn->size());
  for (size_t i = 0; i < knn->size(); ++i) {
    EXPECT_EQ(range->at(i).id, knn->at(i).id);
  }
}

class PersistenceFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest registers each test as its own process
    // (gtest_discover_tests) and runs them concurrently, so siblings
    // must not share a scratch file.
    path_ = ::testing::TempDir() + "cbix_corrupt_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".db";
    CbirEngine engine(FastExtractor());
    const auto corpus = SmallCorpus(3, 3, 48);
    for (const auto& item : corpus) {
      ASSERT_TRUE(
          engine.AddImage(item.image, item.name, item.class_id).ok());
    }
    ASSERT_TRUE(engine.Save(path_).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  long FileSize() {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    return size;
  }

  void CorruptByte(long offset, uint8_t value) {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    std::fseek(f, offset, SEEK_SET);
    std::fputc(value, f);
    std::fclose(f);
  }

  void Truncate(long new_size) {
    std::FILE* in = std::fopen(path_.c_str(), "rb");
    std::vector<uint8_t> bytes(new_size);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), in), bytes.size());
    std::fclose(in);
    std::FILE* out = std::fopen(path_.c_str(), "wb");
    std::fwrite(bytes.data(), 1, bytes.size(), out);
    std::fclose(out);
  }

  std::string path_;
};

TEST_F(PersistenceFailureTest, FlippedPayloadByteDetected) {
  CorruptByte(FileSize() / 2, 0x5a);
  CbirEngine engine(FastExtractor());
  const Status s = engine.Load(path_);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST_F(PersistenceFailureTest, TruncatedFileDetected) {
  Truncate(FileSize() / 2);
  CbirEngine engine(FastExtractor());
  EXPECT_EQ(engine.Load(path_).code(), StatusCode::kCorruption);
}

TEST_F(PersistenceFailureTest, TruncatedHeaderDetected) {
  Truncate(10);
  CbirEngine engine(FastExtractor());
  EXPECT_EQ(engine.Load(path_).code(), StatusCode::kCorruption);
}

TEST_F(PersistenceFailureTest, FlippedMagicDetected) {
  CorruptByte(0, 0x00);
  CbirEngine engine(FastExtractor());
  EXPECT_EQ(engine.Load(path_).code(), StatusCode::kCorruption);
}

TEST_F(PersistenceFailureTest, IntactFileStillLoads) {
  CbirEngine engine(FastExtractor());
  EXPECT_TRUE(engine.Load(path_).ok());
  EXPECT_EQ(engine.size(), 9u);
}

TEST(IntegrationTest, FeedbackLoopThroughEngine) {
  // Exercise the full relevance-feedback interaction through the engine
  // API: query, mark, refine, re-query.
  CbirEngine engine(FastExtractor());
  const auto corpus = SmallCorpus(5, 8, 48);
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }
  const Vec q0 = engine.ExtractFeatures(corpus[0].image);
  const auto round1 = engine.QueryKnnByVector(q0, 10);
  ASSERT_TRUE(round1.ok());

  std::vector<Vec> relevant, irrelevant;
  for (const auto& match : round1.value()) {
    const Vec& features = engine.store().record(match.id).features;
    (match.label == corpus[0].class_id ? relevant : irrelevant)
        .push_back(features);
  }
  const auto refined = RocchioRefine(q0, relevant, irrelevant);
  ASSERT_TRUE(refined.ok());
  const auto round2 = engine.QueryKnnByVector(refined.value(), 10);
  ASSERT_TRUE(round2.ok());
  EXPECT_EQ(round2->size(), 10u);
}

TEST(IntegrationTest, DistortedQueriesStillRankSourceClassHigh) {
  // Photometric robustness end-to-end: a mildly distorted image must
  // rank its own class in the majority of the top 5.
  CbirEngine engine(FastExtractor());
  const auto corpus = SmallCorpus(5, 8, 64);
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }
  Rng rng(3);
  int majority = 0, total = 0;
  for (size_t qi = 0; qi < corpus.size(); qi += 5) {
    Distortion d = RandomDistortion(&rng, 0.25f);
    d.flip_horizontal = false;
    const ImageU8 distorted = ApplyDistortion(corpus[qi].image, d, qi);
    const auto result = engine.QueryKnn(distorted, 5);
    ASSERT_TRUE(result.ok());
    int same = 0;
    for (const auto& match : result.value()) {
      if (match.label == corpus[qi].class_id) ++same;
    }
    majority += same >= 3;
    ++total;
  }
  EXPECT_GE(majority * 10, total * 7);  // >= 70% of queries
}

}  // namespace
}  // namespace cbix
