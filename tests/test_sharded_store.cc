// Shard/unsharded interchangeability: a ShardedFeatureStore-backed
// index must return *identical* ids and distances (ties broken by id)
// to an unsharded LinearScanIndex over the same rows, for k-NN and
// range queries, across every engine metric and a spread of shard
// counts. The distance kernels evaluate rows independently of their
// block, so the comparison is exact equality, not approximate.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/feature_store.h"
#include "core/sharded_store.h"
#include "corpus/vector_workload.h"
#include "index/linear_scan.h"
#include "index/sharded_index.h"
#include "index/vp_tree.h"

namespace cbix {
namespace {

ShardedFeatureStore::ShardIndexFactory LinearScanFactory(MetricKind metric) {
  return [metric]() -> std::unique_ptr<VectorIndex> {
    return std::make_unique<LinearScanIndex>(MakeMetric(metric));
  };
}

void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank=" << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << context << " rank=" << i;
  }
}

// --------------------------------------------------------------------------
// The central property: sharded == unsharded, exactly.

struct EquivalenceCase {
  std::string name;
  MetricKind metric;
  VectorDistribution distribution;
  size_t dim;
};

class ShardedEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(ShardedEquivalence, MatchesLinearScanExactly) {
  const EquivalenceCase& param = GetParam();

  VectorWorkloadSpec spec;
  spec.distribution = param.distribution;
  spec.count = 500;
  spec.dim = param.dim;
  spec.seed = 4242;
  const std::vector<Vec> data = GenerateVectors(spec);

  LinearScanIndex reference(MakeMetric(param.metric));
  ASSERT_TRUE(reference.Build(data).ok());

  const std::vector<Vec> queries =
      GenerateQueries(spec, data, QueryMode::kPerturbedData, 8, 0.04, 99);

  for (size_t num_shards : {1u, 2u, 3u, 7u}) {
    ShardedIndexOptions options;
    options.num_shards = num_shards;
    ShardedIndex sharded(LinearScanFactory(param.metric), options);
    ASSERT_TRUE(sharded.Build(data).ok());
    ASSERT_EQ(sharded.size(), data.size());
    ASSERT_EQ(sharded.dim(), param.dim);
    ASSERT_EQ(sharded.num_shards(), num_shards);

    const std::string context =
        param.name + "/shards=" + std::to_string(num_shards);
    for (const Vec& q : queries) {
      const auto knn_ref = KnnSearch(reference, q, 10);
      ASSERT_EQ(knn_ref.size(), 10u);

      for (size_t k : {1ULL, 5ULL, 25ULL}) {
        ExpectSameNeighbors(KnnSearch(sharded, q, k),
                            KnnSearch(reference, q, k),
                            context + " k=" + std::to_string(k));
      }
      for (double radius :
           {knn_ref[2].distance, knn_ref[9].distance * 1.5}) {
        ExpectSameNeighbors(
            RangeSearch(sharded, q, radius), RangeSearch(reference, q, radius),
            context + " radius=" + std::to_string(radius));
      }
    }
  }
}

std::vector<EquivalenceCase> MakeEquivalenceCases() {
  const std::pair<MetricKind, std::string> metrics[] = {
      {MetricKind::kL1, "l1"},
      {MetricKind::kL2, "l2"},
      {MetricKind::kLInf, "linf"},
      {MetricKind::kHistogramIntersection, "hist_intersect"},
      {MetricKind::kChiSquare, "chi_square"},
      {MetricKind::kHellinger, "hellinger"},
      {MetricKind::kCosine, "cosine"},
  };
  std::vector<EquivalenceCase> cases;
  for (const auto& [metric, mname] : metrics) {
    cases.push_back({mname + "_clustered_d16", metric,
                     VectorDistribution::kClustered, 16});
    cases.push_back({mname + "_uniform_d8", metric,
                     VectorDistribution::kUniform, 8});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, ShardedEquivalence,
    ::testing::ValuesIn(MakeEquivalenceCases()),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

// Shard-local VP-trees must compose exactly like shard-local scans.
TEST(ShardedIndexTest, VpTreeShardsMatchLinearScan) {
  VectorWorkloadSpec spec;
  spec.count = 400;
  spec.dim = 12;
  spec.seed = 11;
  const std::vector<Vec> data = GenerateVectors(spec);

  LinearScanIndex reference(MakeMetric(MetricKind::kL2));
  ASSERT_TRUE(reference.Build(data).ok());

  ShardedIndexOptions options;
  options.num_shards = 3;
  ShardedIndex sharded(
      []() -> std::unique_ptr<VectorIndex> {
        return std::make_unique<VpTree>(MakeMetric(MetricKind::kL2),
                                        VpTreeOptions{});
      },
      options);
  ASSERT_TRUE(sharded.Build(data).ok());
  EXPECT_NE(sharded.Name().find("sharded(vp_tree"), std::string::npos);

  const std::vector<Vec> queries =
      GenerateQueries(spec, data, QueryMode::kPerturbedData, 6, 0.05, 5);
  for (const Vec& q : queries) {
    ExpectSameNeighbors(KnnSearch(sharded, q, 9), KnnSearch(reference, q, 9),
                        "vp_shards");
    const double radius = KnnSearch(reference, q, 5)[4].distance;
    ExpectSameNeighbors(RangeSearch(sharded, q, radius),
                        RangeSearch(reference, q, radius), "vp_shards_range");
  }
}

// --------------------------------------------------------------------------
// Id mapping contract.

TEST(ShardedStoreTest, IdMappingRoundTripsAndBalances) {
  FeatureMatrix matrix(4);
  const size_t n = 103;
  for (size_t i = 0; i < n; ++i) {
    const Vec row = {static_cast<float>(i), 0.f, 0.f, 0.f};
    matrix.AppendRow(row);
  }
  for (size_t num_shards : {1u, 2u, 3u, 7u, 16u}) {
    ShardedFeatureStore store(num_shards);
    store.Partition(matrix);
    ASSERT_EQ(store.num_shards(), num_shards);
    ASSERT_EQ(store.size(), n);
    ASSERT_EQ(store.dim(), 4u);

    size_t total = 0, min_rows = n, max_rows = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      total += store.shard_size(s);
      min_rows = std::min(min_rows, store.shard_size(s));
      max_rows = std::max(max_rows, store.shard_size(s));
    }
    EXPECT_EQ(total, n);
    EXPECT_LE(max_rows - min_rows, 1u) << "round-robin must balance";

    for (uint32_t g = 0; g < n; ++g) {
      const size_t s = store.ShardOf(g);
      const uint32_t local = store.LocalId(g);
      ASSERT_LT(s, num_shards);
      ASSERT_LT(local, store.shard_size(s));
      EXPECT_EQ(store.GlobalId(s, local), g);
      // The row really is the one the global id names.
      EXPECT_EQ(store.shard(s).row(local)[0], static_cast<float>(g));
    }
  }
}

TEST(ShardedStoreTest, FeatureStoreShardedViewMatchesMatrix) {
  FeatureStore store;
  for (int i = 0; i < 10; ++i) {
    ImageRecord record;
    record.name = "img" + std::to_string(i);
    record.features = {static_cast<float>(i), 1.f};
    ASSERT_TRUE(store.Add(std::move(record)).ok());
  }
  ShardedFeatureStore sharded(3);
  sharded.Partition(store.matrix());
  EXPECT_EQ(sharded.size(), store.size());
  EXPECT_EQ(sharded.dim(), store.feature_dim());
  for (uint32_t g = 0; g < store.size(); ++g) {
    const float* row =
        sharded.shard(sharded.ShardOf(g)).row(sharded.LocalId(g));
    EXPECT_EQ(row[0], store.features(g)[0]);
    EXPECT_EQ(row[1], store.features(g)[1]);
  }
}

// --------------------------------------------------------------------------
// MergeTopK semantics.

TEST(ShardedStoreTest, MergeTopKOrdersByDistanceThenId) {
  std::vector<std::vector<Neighbor>> per_shard = {
      {{4, 0.1}, {7, 0.5}},
      {{2, 0.5}, {5, 0.9}},
      {{0, 0.5}, {3, 0.7}},
  };
  const auto merged = ShardedFeatureStore::MergeTopK(per_shard, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].id, 4u);
  // Three hits tie at 0.5 — ascending global id breaks the tie.
  EXPECT_EQ(merged[1].id, 0u);
  EXPECT_EQ(merged[2].id, 2u);
  EXPECT_EQ(merged[3].id, 7u);
}

TEST(ShardedStoreTest, MergeTopKHandlesShortAndEmptyShards) {
  std::vector<std::vector<Neighbor>> per_shard = {{{1, 0.3}}, {}, {{0, 0.2}}};
  const auto merged = ShardedFeatureStore::MergeTopK(per_shard, 10);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].id, 0u);
  EXPECT_EQ(merged[1].id, 1u);
}

// --------------------------------------------------------------------------
// Degenerate shapes.

TEST(ShardedIndexTest, EmptyBuild) {
  ShardedIndexOptions options;
  options.num_shards = 4;
  ShardedIndex index(LinearScanFactory(MetricKind::kL2), options);
  ASSERT_TRUE(index.Build({}).ok());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(KnnSearch(index, {}, 5).empty());
  EXPECT_TRUE(RangeSearch(index, {}, 1.0).empty());
}

TEST(ShardedIndexTest, FewerRowsThanShards) {
  ShardedIndexOptions options;
  options.num_shards = 7;
  ShardedIndex index(LinearScanFactory(MetricKind::kL2), options);
  const std::vector<Vec> data = {{0.f}, {1.f}, {2.f}};
  ASSERT_TRUE(index.Build(data).ok());
  EXPECT_EQ(index.size(), 3u);
  const auto knn = KnnSearch(index, {1.2f}, 10);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_EQ(knn[0].id, 1u);
  EXPECT_EQ(knn[1].id, 2u);
  EXPECT_EQ(knn[2].id, 0u);
}

TEST(ShardedIndexTest, DuplicateVectorsTieBreakByGlobalId) {
  ShardedIndexOptions options;
  options.num_shards = 3;
  ShardedIndex index(LinearScanFactory(MetricKind::kL2), options);
  const std::vector<Vec> data(20, Vec{0.5f, 0.5f});
  ASSERT_TRUE(index.Build(data).ok());
  const auto knn = KnnSearch(index, {0.5f, 0.5f}, 8);
  ASSERT_EQ(knn.size(), 8u);
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_EQ(knn[i].id, i) << "global-id tie break across shards";
    EXPECT_EQ(knn[i].distance, 0.0);
  }
  EXPECT_EQ(RangeSearch(index, {0.5f, 0.5f}, 0.0).size(), 20u);
}

TEST(ShardedIndexTest, RebuildReplacesContents) {
  ShardedIndexOptions options;
  options.num_shards = 2;
  ShardedIndex index(LinearScanFactory(MetricKind::kL2), options);
  ASSERT_TRUE(index.Build({{0.f}, {1.f}, {2.f}}).ok());
  ASSERT_TRUE(index.Build({{5.f}}).ok());
  EXPECT_EQ(index.size(), 1u);
  const auto knn = KnnSearch(index, {5.f}, 10);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].id, 0u);
}

TEST(ShardedIndexTest, InconsistentDimensionsRejected) {
  ShardedIndexOptions options;
  options.num_shards = 2;
  ShardedIndex index(LinearScanFactory(MetricKind::kL2), options);
  EXPECT_EQ(index.Build({{1.f, 2.f}, {1.f}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedIndexTest, StatsCountEveryRowOnceAcrossShards) {
  VectorWorkloadSpec spec;
  spec.count = 300;
  spec.dim = 8;
  const std::vector<Vec> data = GenerateVectors(spec);
  ShardedIndexOptions options;
  options.num_shards = 4;
  ShardedIndex index(LinearScanFactory(MetricKind::kL2), options);
  ASSERT_TRUE(index.Build(data).ok());
  SearchStats stats;
  index.KnnSearch(Vec(8, 0.5f), 5, &stats);
  // Shard-local linear scans evaluate each of their rows exactly once.
  EXPECT_EQ(stats.distance_evals, data.size());
}

// --------------------------------------------------------------------------
// Engine integration: the `shards` knob must not change any answer.

TEST(ShardedEngineTest, ShardedConfigMatchesUnsharded) {
  VectorWorkloadSpec spec;
  spec.count = 250;
  spec.dim = 10;
  spec.seed = 31;
  const std::vector<Vec> data = GenerateVectors(spec);
  const std::vector<Vec> queries =
      GenerateQueries(spec, data, QueryMode::kPerturbedData, 5, 0.05, 3);

  EngineConfig flat_config;
  flat_config.index_kind = IndexKind::kLinearScan;
  flat_config.metric = MetricKind::kL1;
  EngineConfig sharded_config = flat_config;
  sharded_config.shards = 3;

  CbirEngine flat(FeatureExtractor(), flat_config);
  CbirEngine sharded(FeatureExtractor(), sharded_config);
  for (size_t i = 0; i < data.size(); ++i) {
    const std::string name = "v" + std::to_string(i);
    ASSERT_TRUE(flat.AddFeatureVector(data[i], name).ok());
    ASSERT_TRUE(sharded.AddFeatureVector(data[i], name).ok());
  }
  ASSERT_TRUE(flat.BuildIndex().ok());
  ASSERT_TRUE(sharded.BuildIndex().ok());

  for (const Vec& q : queries) {
    const auto want = flat.QueryKnnByVector(q, 7);
    const auto got = sharded.QueryKnnByVector(q, 7);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value().size(), want.value().size());
    for (size_t i = 0; i < want.value().size(); ++i) {
      EXPECT_EQ(got.value()[i].id, want.value()[i].id);
      EXPECT_EQ(got.value()[i].distance, want.value()[i].distance);
      EXPECT_EQ(got.value()[i].name, want.value()[i].name);
    }
  }
}

TEST(ShardedEngineTest, MakeIndexWrapsWhenShardsConfigured) {
  EngineConfig config;
  config.index_kind = IndexKind::kLinearScan;
  config.metric = MetricKind::kL2;
  config.shards = 4;
  auto index = MakeIndex(config);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index.value()->Build({{1.f}, {2.f}, {3.f}}).ok());
  EXPECT_NE(index.value()->Name().find("shards=4"), std::string::npos);

  config.shards = 1;
  auto flat = MakeIndex(config);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat.value()->Name().find("sharded"), std::string::npos);
}

}  // namespace
}  // namespace cbix
