// AllocationGuard — the dynamic complement of the static lint wall:
// counting operator new/delete hooks that turn the "allocation-free
// hot path" comments (src/index/top_k.h, src/distance/batch_kernels.h,
// src/README.md) into a tested invariant.
//
// Contract under test: after a warm-up batch has sized every
// per-thread scratch buffer (TLS collectors/keys/visited/rerank lanes,
// the tls_ discipline cbix_lint's hot-path-alloc rule recognizes), a
// steady-state VectorIndex::SearchBatch performs ZERO heap
// allocations — across the linear-scan, HNSW (float and quantized
// traversal) and QuantizedStore (int8 / PQ / generic-metric) backings.
//
// This file lives in its own test binary (cbix_alloc_tests): replacing
// the global allocation operators must not perturb the main suite, and
// the sanitizer builds (which interpose their own allocator) skip it
// entirely (see CMakeLists.txt).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/engine.h"
#include "index/hnsw.h"
#include "index/linear_scan.h"
#include "index/query_block.h"
#include "index/top_k.h"
#include "quant/quantized_store.h"
#include "simd/dispatch.h"
#include "util/random.h"

namespace {

std::atomic<uint64_t> g_allocations{0};
std::atomic<uint64_t> g_deallocations{0};

void* CountedAlloc(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(size_t size, size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size ? size : align) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void CountedFree(void* p) noexcept {
  if (p == nullptr) return;
  g_deallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<size_t>(align));
}
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, size_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}

namespace cbix {
namespace {

/// Scoped allocation meter: captures the global counters on
/// construction; allocations()/deallocations() report the delta. Keep
/// gtest assertions OUTSIDE the scope being measured — EXPECT_* itself
/// allocates on failure.
class AllocationGuard {
 public:
  AllocationGuard()
      : allocs_(g_allocations.load(std::memory_order_relaxed)),
        frees_(g_deallocations.load(std::memory_order_relaxed)) {}

  uint64_t allocations() const {
    return g_allocations.load(std::memory_order_relaxed) - allocs_;
  }
  uint64_t deallocations() const {
    return g_deallocations.load(std::memory_order_relaxed) - frees_;
  }

 private:
  uint64_t allocs_;
  uint64_t frees_;
};

std::vector<Vec> RandomVectors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> out(n, Vec(dim));
  for (auto& v : out) {
    for (auto& x : v) {
      // Non-negative: every metric (histogram family included) accepts
      // the data, so one generator serves all backings.
      x = static_cast<float>(rng.NextDouble());
    }
  }
  return out;
}

constexpr size_t kRows = 2048;
constexpr size_t kDim = 32;
constexpr size_t kQueries = 16;
constexpr size_t kK = 10;

/// The shared harness: builds the index over random rows, packs a
/// query block, runs `warmups` batches to size every thread-local
/// scratch, then measures one more batch under the guard and asserts
/// zero allocations AND zero deallocations (buffer churn — free +
/// fresh alloc per batch — is exactly the regression this catches).
void ExpectSteadyStateAllocationFree(VectorIndex* index,
                                     size_t warmups = 2) {
  const std::vector<Vec> data = RandomVectors(kRows, kDim, /*seed=*/41);
  ASSERT_TRUE(index->Build(data).ok());
  const std::vector<Vec> queries =
      RandomVectors(kQueries, kDim, /*seed=*/97);
  const QueryBlock block = QueryBlock::Pack(queries);
  std::vector<std::vector<Neighbor>> results(kQueries);
  std::vector<SearchStats> stats(kQueries);
  for (size_t w = 0; w < warmups; ++w) {
    index->SearchBatch(block, kK, results.data(), stats.data());
  }
  const std::vector<std::vector<Neighbor>> warm = results;

  uint64_t allocs = 0;
  uint64_t frees = 0;
  {
    AllocationGuard guard;
    index->SearchBatch(block, kK, results.data(), stats.data());
    allocs = guard.allocations();
    frees = guard.deallocations();
  }
  EXPECT_EQ(allocs, 0u) << "steady-state SearchBatch allocated";
  EXPECT_EQ(frees, 0u) << "steady-state SearchBatch freed (buffer churn)";
  // The measured batch really answered: bit-identical to the warm one.
  for (size_t qi = 0; qi < kQueries; ++qi) {
    ASSERT_EQ(results[qi].size(), kK);
    EXPECT_EQ(results[qi], warm[qi]) << "query " << qi;
  }
}

// The hooks themselves must demonstrably count — otherwise every
// zero-allocation assertion above would pass vacuously.
TEST(AllocationGuardTest, HooksObserveAllocations) {
  uint64_t allocs = 0;
  uint64_t frees = 0;
  {
    AllocationGuard guard;
    {
      std::vector<int>* v = new std::vector<int>(1000);
      delete v;
    }
    allocs = guard.allocations();
    frees = guard.deallocations();
  }
  EXPECT_GE(allocs, 2u);  // the vector object + its buffer
  EXPECT_GE(frees, 2u);
}

TEST(AllocationGuardTest, WarmTopKCollectorAcceptPathIsAllocationFree) {
  const auto metric = MakeMetric(MetricKind::kL2);
  TopKCollector collector;
  std::vector<Neighbor> out;
  // Warm-up: one full accept + export cycle sizes the heap and the
  // output buffer.
  collector.Reset(metric.get(), kK);
  for (uint32_t id = 0; id < 100; ++id) {
    collector.Offer(id, 1000.0 - id);
  }
  collector.ExportSorted(&out);

  uint64_t allocs = 0;
  {
    AllocationGuard guard;
    collector.Reset(metric.get(), kK);
    for (uint32_t id = 0; id < 100; ++id) {
      collector.Offer(id, 1000.0 - id);
    }
    collector.ExportSorted(&out);
    allocs = guard.allocations();
  }
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(out.size(), kK);
}

TEST(AllocationGuardTest, SimdDispatchSelectionAndKernelsAllocationFree) {
  // The tier selection (env parse + CPUID probe) and every dispatched
  // kernel run on stack operands must allocate nothing — the kernels
  // sit under the hot paths the other tests in this file measure.
  const simd::KernelTable& table = simd::ActiveKernels();
  constexpr size_t kN = 64;
  float a[kN], b[kN];
  double wa[kN], wb[kN], widened[kN];
  int16_t w_q[kN];
  uint8_t codes[kN];
  Rng rng(7);
  for (size_t i = 0; i < kN; ++i) {
    a[i] = static_cast<float>(rng.NextDouble());
    b[i] = static_cast<float>(rng.NextDouble());
    wa[i] = a[i];
    wb[i] = b[i];
    w_q[i] = static_cast<int16_t>(i * 31 % 200 - 100);
    codes[i] = static_cast<uint8_t>(i * 17);
  }

  double sink = 0.0;
  uint64_t allocs = 0;
  {
    AllocationGuard guard;
    for (int round = 0; round < 4; ++round) {
      sink += static_cast<double>(simd::ResolveTier("avx2"));
      sink += static_cast<double>(simd::ResolveTier("not-a-tier"));
      sink += static_cast<double>(simd::BestSupportedTier());
      const simd::KernelTable& t = simd::ActiveKernels();
      sink += t.l1(a, b, kN);
      sink += t.l2_squared(a, b, kN);
      sink += t.l2_squared_wide(wa, wb, kN);
      sink += t.linf(a, b, kN);
      sink += t.chi_square(a, b, kN);
      sink += t.hellinger_squared_sum(a, b, kN);
      sink += t.hellinger_squared_sum_fast(a, b, kN);
      sink += t.mass(a, kN);
      sink += t.norm_squared(a, kN);
      double x = 0.0, y = 0.0, z = 0.0;
      t.dot_and_norm_sq(a, b, kN, &x, &y);
      sink += x + y;
      t.min_and_mass(a, b, kN, &x, &y);
      sink += x + y;
      t.dot_pair_and_norm_sq(a, b, b, kN, &x, &y, &z);
      sink += x + y + z;
      t.widen_to_double(a, kN, widened);
      sink += widened[kN - 1];
      sink += static_cast<double>(t.int8_weighted_code_sum(w_q, codes, kN));
    }
    allocs = guard.allocations();
  }
  EXPECT_EQ(allocs, 0u) << "dispatch selection or kernel call allocated";
  // The process-wide selection ran exactly once regardless of how many
  // call sites (this test included) touched ActiveKernels().
  EXPECT_EQ(simd::detail::InitCount(), 1);
  EXPECT_TRUE(std::isfinite(sink));
  EXPECT_EQ(&table, &simd::ActiveKernels());
}

TEST(AllocGuardSearchBatch, LinearScan) {
  LinearScanIndex index(MakeMetric(MetricKind::kL2));
  ExpectSteadyStateAllocationFree(&index);
}

TEST(AllocGuardSearchBatch, LinearScanCosine) {
  LinearScanIndex index(MakeMetric(MetricKind::kCosine));
  ExpectSteadyStateAllocationFree(&index);
}

TEST(AllocGuardSearchBatch, HnswFloatTraversal) {
  HnswIndex index(MakeMetric(MetricKind::kL2));
  ExpectSteadyStateAllocationFree(&index);
}

TEST(AllocGuardSearchBatch, HnswInt8Traversal) {
  HnswOptions options;
  options.traversal = HnswTraversal::kInt8;
  HnswIndex index(MakeMetric(MetricKind::kL2), options);
  ExpectSteadyStateAllocationFree(&index);
}

TEST(AllocGuardSearchBatch, QuantizedInt8L2) {
  QuantizedStoreOptions options;
  options.backing = QuantBacking::kInt8;
  options.rerank_factor = 4;
  QuantizedStore store(MakeMetric(MetricKind::kL2), options);
  ExpectSteadyStateAllocationFree(&store);
}

TEST(AllocGuardSearchBatch, QuantizedInt8CosineFastPath) {
  QuantizedStoreOptions options;
  options.backing = QuantBacking::kInt8;
  options.rerank_factor = 4;
  QuantizedStore store(MakeMetric(MetricKind::kCosine), options);
  ExpectSteadyStateAllocationFree(&store);
}

TEST(AllocGuardSearchBatch, QuantizedPqAdc) {
  QuantizedStoreOptions options;
  options.backing = QuantBacking::kPq;
  options.rerank_factor = 8;
  options.pq.m = 8;
  options.pq.train_iters = 3;
  QuantizedStore store(MakeMetric(MetricKind::kL2), options);
  ExpectSteadyStateAllocationFree(&store);
}

TEST(AllocGuardSearchBatch, QuantizedGenericMetricDequantizePath) {
  // chi-square has no fused quantized kernel, so this exercises the
  // kGeneric shared-dequantize-block mode.
  QuantizedStoreOptions options;
  options.backing = QuantBacking::kInt8;
  options.rerank_factor = 4;
  QuantizedStore store(MakeMetric(MetricKind::kChiSquare), options);
  ExpectSteadyStateAllocationFree(&store);
}

}  // namespace
}  // namespace cbix
