#include <gtest/gtest.h>

#include <cmath>

#include "image/draw.h"
#include "image/glcm.h"
#include "image/moments.h"

namespace cbix {
namespace {

ImageF CircleImage(int size, float cx, float cy, float r) {
  ImageF img(size, size, 1, 0.0f);
  FillCircle(&img, cx, cy, r, {1.0f, 1.0f, 1.0f});
  return img;
}

TEST(MomentsTest, CentroidOfCircle) {
  const ImageF img = CircleImage(64, 20.0f, 30.0f, 8.0f);
  const Moments m = ComputeMoments(img);
  EXPECT_NEAR(m.cx, 20.0, 0.5);
  EXPECT_NEAR(m.cy, 30.0, 0.5);
  EXPECT_GT(m.m00, 150.0);  // ~pi*64
}

TEST(MomentsTest, EmptyImageDefaults) {
  ImageF img(10, 10, 1, 0.0f);
  const Moments m = ComputeMoments(img);
  EXPECT_EQ(m.m00, 0.0);
  EXPECT_EQ(m.cx, 5.0);
  EXPECT_EQ(m.cy, 5.0);
  EXPECT_EQ(Eccentricity(m), 0.0);
}

TEST(MomentsTest, CentralMomentsTranslationInvariant) {
  const ImageF a = CircleImage(64, 20.0f, 20.0f, 7.0f);
  const ImageF b = CircleImage(64, 40.0f, 35.0f, 7.0f);
  const Moments ma = ComputeMoments(a);
  const Moments mb = ComputeMoments(b);
  EXPECT_NEAR(ma.mu20, mb.mu20, std::fabs(ma.mu20) * 0.05 + 1.0);
  EXPECT_NEAR(ma.mu02, mb.mu02, std::fabs(ma.mu02) * 0.05 + 1.0);
  EXPECT_NEAR(ma.mu11, mb.mu11, std::fabs(ma.mu20) * 0.05 + 1.0);
}

TEST(MomentsTest, HuInvariantUnderScale) {
  const ImageF small = CircleImage(96, 48.0f, 48.0f, 10.0f);
  const ImageF big = CircleImage(96, 48.0f, 48.0f, 25.0f);
  const auto hu_small = HuMoments(ComputeMoments(small));
  const auto hu_big = HuMoments(ComputeMoments(big));
  // First Hu invariant: compare with generous tolerance (rasterization).
  EXPECT_NEAR(hu_small[0], hu_big[0], hu_small[0] * 0.05);
}

TEST(MomentsTest, HuInvariantUnderRotation) {
  // A bar rotated 90° must keep its Hu invariants.
  ImageF bar(64, 64, 1, 0.0f);
  FillRect(&bar, 12, 28, 52, 36, {1, 1, 1});
  ImageF bar_rot(64, 64, 1, 0.0f);
  FillRect(&bar_rot, 28, 12, 36, 52, {1, 1, 1});
  const auto hu_a = HuMoments(ComputeMoments(bar));
  const auto hu_b = HuMoments(ComputeMoments(bar_rot));
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(hu_a[i], hu_b[i],
                std::max(1e-12, std::fabs(hu_a[i]) * 0.02))
        << "hu[" << i << "]";
  }
}

TEST(MomentsTest, EccentricityCircleVsBar) {
  const ImageF circle = CircleImage(64, 32.0f, 32.0f, 14.0f);
  ImageF bar(64, 64, 1, 0.0f);
  FillRect(&bar, 4, 30, 60, 34, {1, 1, 1});
  const double ecc_circle = Eccentricity(ComputeMoments(circle));
  const double ecc_bar = Eccentricity(ComputeMoments(bar));
  EXPECT_LT(ecc_circle, 0.2);
  EXPECT_GT(ecc_bar, 0.9);
}

TEST(MomentsTest, PrincipalOrientationOfTiltedBar) {
  // Horizontal bar: orientation ~0.
  ImageF bar(64, 64, 1, 0.0f);
  FillRect(&bar, 8, 30, 56, 34, {1, 1, 1});
  EXPECT_NEAR(PrincipalOrientation(ComputeMoments(bar)), 0.0, 0.05);
  // Vertical bar: orientation ~±pi/2.
  ImageF vbar(64, 64, 1, 0.0f);
  FillRect(&vbar, 30, 8, 34, 56, {1, 1, 1});
  EXPECT_NEAR(std::fabs(PrincipalOrientation(ComputeMoments(vbar))),
              M_PI / 2, 0.05);
}

// --------------------------------------------------------------------------
// GLCM

ImageF CheckerImage(int size, int period) {
  ImageF img(size, size, 1);
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      img.at(x, y) = ((x / period + y / period) % 2 == 0) ? 0.1f : 0.9f;
    }
  }
  return img;
}

TEST(GlcmTest, ProbabilitiesSumToOne) {
  const ImageF img = CheckerImage(32, 4);
  const Glcm glcm(img, 8, 1, 0);
  double sum = 0.0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) sum += glcm.at(i, j);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GlcmTest, SymmetricMode) {
  const ImageF img = CheckerImage(32, 4);
  const Glcm glcm(img, 8, 1, 0, /*symmetric=*/true);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(glcm.at(i, j), glcm.at(j, i), 1e-12);
    }
  }
}

TEST(GlcmTest, ConstantImageIsMaximallyHomogeneous) {
  ImageF img(16, 16, 1, 0.5f);
  const Glcm glcm(img, 8, 1, 0);
  EXPECT_NEAR(glcm.Energy(), 1.0, 1e-9);       // all mass in one cell
  EXPECT_NEAR(glcm.Entropy(), 0.0, 1e-9);
  EXPECT_NEAR(glcm.Contrast(), 0.0, 1e-9);
  EXPECT_NEAR(glcm.Homogeneity(), 1.0, 1e-9);
  EXPECT_NEAR(glcm.MaxProbability(), 1.0, 1e-9);
}

TEST(GlcmTest, FineCheckerHasHighContrastAtPeriodOffset) {
  // Period-1 checker: horizontal neighbours always differ -> all mass
  // off-diagonal -> contrast high, homogeneity low.
  const ImageF img = CheckerImage(32, 1);
  const Glcm glcm(img, 8, 1, 0);
  EXPECT_GT(glcm.Contrast(), 10.0);
  EXPECT_LT(glcm.Homogeneity(), 0.3);
  // Smooth noise-free two-level texture still has low entropy (2 cells).
  EXPECT_LT(glcm.Entropy(), 1.1);
}

TEST(GlcmTest, CoarseCheckerSmootherThanFine) {
  const Glcm fine(CheckerImage(32, 1), 8, 1, 0);
  const Glcm coarse(CheckerImage(32, 8), 8, 1, 0);
  EXPECT_GT(fine.Contrast(), coarse.Contrast());
  EXPECT_LT(fine.Homogeneity(), coarse.Homogeneity());
}

TEST(GlcmTest, CorrelationOfGradientIsHigh) {
  // A smooth ramp: neighbouring pixels have very similar levels.
  ImageF img(32, 32, 1);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) img.at(x, y) = x / 32.0f;
  }
  const Glcm glcm(img, 16, 1, 0);
  EXPECT_GT(glcm.Correlation(), 0.9);
}

TEST(GlcmTest, DegenerateCorrelationIsZero) {
  ImageF img(8, 8, 1, 0.5f);
  const Glcm glcm(img, 8, 1, 0);
  EXPECT_EQ(glcm.Correlation(), 0.0);
}

TEST(GlcmTest, StandardOffsetsAreFourDirections) {
  const auto offsets = StandardGlcmOffsets(2);
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets[0], (std::pair<int, int>{2, 0}));
  EXPECT_EQ(offsets[2], (std::pair<int, int>{0, -2}));
}

TEST(GlcmTest, PairCountMatchesGeometry) {
  // 4x4 image, offset (1,0): 3 pairs per row * 4 rows, doubled symmetric.
  ImageF img(4, 4, 1, 0.5f);
  const Glcm glcm(img, 4, 1, 0, /*symmetric=*/true);
  EXPECT_EQ(glcm.pair_count(), 24.0);
}

}  // namespace
}  // namespace cbix
