#include "index/m_tree.h"

#include <gtest/gtest.h>

#include "corpus/vector_workload.h"
#include "distance/histogram_measures.h"
#include "distance/minkowski.h"
#include "index/linear_scan.h"

namespace cbix {
namespace {

std::vector<Vec> MakeData(size_t n, size_t dim, VectorDistribution dist,
                          uint64_t seed = 11) {
  VectorWorkloadSpec spec;
  spec.distribution = dist;
  spec.count = n;
  spec.dim = dim;
  spec.seed = seed;
  return GenerateVectors(spec);
}

struct MTreeCase {
  std::string name;
  VectorDistribution distribution;
  size_t dim;
  size_t max_entries;
};

class MTreeEquivalence : public ::testing::TestWithParam<MTreeCase> {};

TEST_P(MTreeEquivalence, MatchesLinearScan) {
  const MTreeCase& param = GetParam();
  const auto data = MakeData(700, param.dim, param.distribution);

  auto metric = std::make_shared<L2Distance>();
  LinearScanIndex reference(metric);
  ASSERT_TRUE(reference.Build(data).ok());
  MTree tree(metric, param.max_entries);
  ASSERT_TRUE(tree.Build(data).ok());
  ASSERT_EQ(tree.size(), data.size());

  VectorWorkloadSpec spec;
  spec.distribution = param.distribution;
  spec.count = data.size();
  spec.dim = param.dim;
  const auto queries =
      GenerateQueries(spec, data, QueryMode::kPerturbedData, 10, 0.03, 55);

  for (const Vec& q : queries) {
    const auto knn_ref = KnnSearch(reference, q, 12);
    for (size_t k : {1ULL, 6ULL, 12ULL}) {
      const auto got = KnnSearch(tree, q, k);
      const auto want = KnnSearch(reference, q, k);
      ASSERT_EQ(got.size(), want.size()) << "k=" << k;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id) << "k=" << k;
        EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
      }
    }
    for (double radius :
         {knn_ref[3].distance, knn_ref[11].distance * 1.3}) {
      const auto got = RangeSearch(tree, q, radius);
      const auto want = RangeSearch(reference, q, radius);
      ASSERT_EQ(got.size(), want.size()) << "radius=" << radius;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, MTreeEquivalence,
    ::testing::Values(
        MTreeCase{"uniform_d4_M16", VectorDistribution::kUniform, 4, 16},
        MTreeCase{"uniform_d16_M16", VectorDistribution::kUniform, 16, 16},
        MTreeCase{"clustered_d4_M8", VectorDistribution::kClustered, 4, 8},
        MTreeCase{"clustered_d16_M16", VectorDistribution::kClustered, 16,
                  16},
        MTreeCase{"clustered_d8_M32", VectorDistribution::kClustered, 8,
                  32},
        MTreeCase{"correlated_d16_M16", VectorDistribution::kCorrelated,
                  16, 16}),
    [](const ::testing::TestParamInfo<MTreeCase>& info) {
      return info.param.name;
    });

TEST(MTreeTest, IncrementalInsertStaysExact) {
  // Insert in several batches, querying between batches: the dynamic
  // behaviour the static VP-tree cannot offer.
  auto metric = std::make_shared<L2Distance>();
  MTree tree(metric, 8);
  LinearScanIndex reference(metric);
  const auto data = MakeData(600, 8, VectorDistribution::kClustered);

  std::vector<Vec> inserted;
  for (size_t batch = 0; batch < 3; ++batch) {
    for (size_t i = batch * 200; i < (batch + 1) * 200; ++i) {
      ASSERT_TRUE(tree.Insert(data[i]).ok());
      inserted.push_back(data[i]);
    }
    ASSERT_TRUE(reference.Build(inserted).ok());
    const Vec& q = data[batch * 37];
    const auto got = KnnSearch(tree, q, 9);
    const auto want = KnnSearch(reference, q, 9);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "batch " << batch;
    }
  }
}

TEST(MTreeTest, MinimumFanoutSurvivesRepeatedSplits) {
  // Regression companion for the ChooseLeaf guard: max_entries at its
  // constructor minimum (4) forces a split roughly every fourth insert
  // and repeated root splits, exercising the invariant that every
  // internal node keeps >= 1 routing entry (the guarded lookup indexed
  // entries[-1] if it ever broke). The tree must stay exact and deep.
  auto metric = std::make_shared<L2Distance>();
  MTree tree(metric, /*max_node_entries=*/4);
  LinearScanIndex reference(metric);
  const auto data = MakeData(500, 6, VectorDistribution::kClustered);
  ASSERT_TRUE(tree.Build(data).ok());
  ASSERT_TRUE(reference.Build(data).ok());
  EXPECT_GE(tree.Height(), 4u);  // fanout 4 over 500 points

  for (int qi = 0; qi < 10; ++qi) {
    const Vec& q = data[qi * 47 % data.size()];
    const auto want = KnnSearch(reference, q, 7);
    const auto got = KnnSearch(tree, q, 7);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "query " << qi;
      EXPECT_EQ(got[i].distance, want[i].distance) << "query " << qi;
    }
  }

  // Keep splitting after the bulk build (duplicates included, which
  // stress the degenerate-partition fallback in SplitNode).
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Insert(data[i % 3]).ok());
  }
  const auto hits = RangeSearch(tree, data[0], 1e-9);
  EXPECT_GE(hits.size(), 17u);  // original + ~50/3 duplicates of data[0]
}

TEST(MTreeTest, HeightGrowsLogarithmically) {
  auto metric = std::make_shared<L2Distance>();
  MTree tree(metric, 16);
  ASSERT_TRUE(
      tree.Build(MakeData(4000, 8, VectorDistribution::kClustered)).ok());
  EXPECT_GE(tree.Height(), 2u);
  EXPECT_LE(tree.Height(), 6u);
}

TEST(MTreeTest, PrunesOnClusteredData) {
  auto metric = std::make_shared<L2Distance>();
  MTree tree(metric, 16);
  const auto data = MakeData(5000, 8, VectorDistribution::kClustered);
  ASSERT_TRUE(tree.Build(data).ok());
  SearchStats stats;
  tree.KnnSearch(data[123], 5, &stats);
  EXPECT_LT(stats.distance_evals, data.size() / 2);
}

TEST(MTreeTest, WorksWithHellingerMetric) {
  auto metric = std::make_shared<HellingerDistance>();
  auto data = MakeData(400, 8, VectorDistribution::kUniform);
  for (auto& v : data) {
    float mass = 0;
    for (float x : v) mass += x;
    for (auto& x : v) x /= mass;
  }
  MTree tree(metric, 12);
  LinearScanIndex reference(metric);
  ASSERT_TRUE(tree.Build(data).ok());
  ASSERT_TRUE(reference.Build(data).ok());
  const auto got = KnnSearch(tree, data[7], 10);
  const auto want = KnnSearch(reference, data[7], 10);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
  }
}

TEST(MTreeTest, EdgeCases) {
  auto metric = std::make_shared<L2Distance>();
  MTree tree(metric, 8);
  ASSERT_TRUE(tree.Build({}).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(KnnSearch(tree, {}, 3).empty());

  ASSERT_TRUE(tree.Build({{1.0f, 1.0f}}).ok());
  const auto knn = KnnSearch(tree, {1.0f, 1.0f}, 5);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].id, 0u);

  // All-duplicates: splits must not loop forever.
  const std::vector<Vec> dups(100, Vec{0.3f, 0.7f});
  ASSERT_TRUE(tree.Build(dups).ok());
  EXPECT_EQ(RangeSearch(tree, {0.3f, 0.7f}, 0.0).size(), 100u);

  EXPECT_EQ(tree.Insert(Vec{1.0f}).code(), StatusCode::kInvalidArgument);
}

TEST(MTreeTest, BuildCountsDistanceEvals) {
  auto metric = std::make_shared<L2Distance>();
  MTree tree(metric, 16);
  ASSERT_TRUE(
      tree.Build(MakeData(500, 4, VectorDistribution::kClustered)).ok());
  EXPECT_GT(tree.build_distance_evals(), 500u);
}

TEST(MTreeTest, NameAndMemory) {
  auto metric = std::make_shared<L1Distance>();
  MTree tree(metric, 20);
  ASSERT_TRUE(
      tree.Build(MakeData(300, 4, VectorDistribution::kUniform)).ok());
  EXPECT_NE(tree.Name().find("M=20"), std::string::npos);
  EXPECT_NE(tree.Name().find("l1"), std::string::npos);
  EXPECT_GT(tree.MemoryBytes(), 300u * 4u * sizeof(float));
}

}  // namespace
}  // namespace cbix
