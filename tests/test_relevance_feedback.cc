#include "core/relevance_feedback.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/retrieval_metrics.h"
#include "corpus/corpus.h"
#include "distance/minkowski.h"

namespace cbix {
namespace {

TEST(RocchioTest, NoFeedbackScalesQueryByAlpha) {
  const Vec q{1.0f, 2.0f};
  const auto refined = RocchioRefine(q, {}, {}, {.alpha = 2.0});
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(refined.value(), (Vec{2.0f, 4.0f}));
}

TEST(RocchioTest, MovesTowardRelevantCentroid) {
  const Vec q{0.0f, 0.0f};
  const std::vector<Vec> relevant{{1.0f, 0.0f}, {3.0f, 0.0f}};
  RocchioParams params;
  params.alpha = 1.0;
  params.beta = 0.5;
  params.gamma = 0.0;
  const auto refined = RocchioRefine(q, relevant, {}, params);
  ASSERT_TRUE(refined.ok());
  // centroid (2, 0) * beta 0.5 = (1, 0).
  EXPECT_NEAR(refined->at(0), 1.0f, 1e-6);
  EXPECT_NEAR(refined->at(1), 0.0f, 1e-6);
}

TEST(RocchioTest, PushesAwayFromIrrelevantAndClamps) {
  const Vec q{0.2f, 0.2f};
  const std::vector<Vec> irrelevant{{1.0f, 0.0f}};
  RocchioParams params;
  params.gamma = 0.5;
  const auto refined = RocchioRefine(q, {}, irrelevant, params);
  ASSERT_TRUE(refined.ok());
  EXPECT_NEAR(refined->at(0), 0.0f, 1e-6);  // 0.2 - 0.5 clamped to 0
  EXPECT_NEAR(refined->at(1), 0.2f, 1e-6);
}

TEST(RocchioTest, ClampCanBeDisabled) {
  const Vec q{0.2f, 0.2f};
  const std::vector<Vec> irrelevant{{1.0f, 0.0f}};
  RocchioParams params;
  params.gamma = 0.5;
  params.clamp_non_negative = false;
  const auto refined = RocchioRefine(q, {}, irrelevant, params);
  ASSERT_TRUE(refined.ok());
  EXPECT_NEAR(refined->at(0), -0.3f, 1e-6);
}

TEST(RocchioTest, RejectsDimensionMismatch) {
  const Vec q{1.0f, 2.0f};
  EXPECT_FALSE(RocchioRefine(q, {{1.0f}}, {}).ok());
  EXPECT_FALSE(RocchioRefine(q, {}, {{1.0f, 2.0f, 3.0f}}).ok());
  EXPECT_FALSE(RocchioRefine({}, {}, {}).ok());
}

TEST(RocchioTest, FeedbackImprovesRetrievalOnCorpus) {
  // End-to-end: one round of positive/negative feedback must improve
  // precision for a class whose first query was mediocre.
  CorpusSpec spec;
  spec.num_classes = 8;
  spec.images_per_class = 12;
  spec.width = spec.height = 64;
  const auto corpus = CorpusGenerator(spec).Generate();

  auto extractor = MakeSingleDescriptorExtractor("color_hist", 64);
  ASSERT_TRUE(extractor.ok());
  CbirEngine engine(extractor.value());
  for (const auto& item : corpus) {
    ASSERT_TRUE(engine.AddImage(item.image, item.name, item.class_id).ok());
  }

  double initial_p10_sum = 0.0, refined_p10_sum = 0.0;
  int evaluated = 0;
  for (size_t qi = 0; qi < corpus.size(); qi += 7) {
    const int32_t label = corpus[qi].class_id;
    const Vec q0 = engine.ExtractFeatures(corpus[qi].image);

    const auto round1 = engine.QueryKnnByVector(q0, 20);
    ASSERT_TRUE(round1.ok());
    std::vector<int32_t> labels1;
    std::vector<Vec> relevant, irrelevant;
    for (const auto& match : round1.value()) {
      if (match.id == qi) continue;
      labels1.push_back(match.label);
      const Vec& features = engine.store().record(match.id).features;
      if (match.label == label) {
        relevant.push_back(features);
      } else {
        irrelevant.push_back(features);
      }
    }
    const double p1 = PrecisionAtK(labels1, label, 10);

    const auto refined = RocchioRefine(q0, relevant, irrelevant);
    ASSERT_TRUE(refined.ok());
    const auto round2 = engine.QueryKnnByVector(refined.value(), 20);
    ASSERT_TRUE(round2.ok());
    std::vector<int32_t> labels2;
    for (const auto& match : round2.value()) {
      if (match.id == qi) continue;
      labels2.push_back(match.label);
    }
    const double p2 = PrecisionAtK(labels2, label, 10);

    initial_p10_sum += p1;
    refined_p10_sum += p2;
    ++evaluated;
  }
  ASSERT_GT(evaluated, 10);
  // Mean precision after feedback must not degrade, and should improve.
  EXPECT_GE(refined_p10_sum, initial_p10_sum);
}

}  // namespace
}  // namespace cbix
