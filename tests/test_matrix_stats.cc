#include <gtest/gtest.h>

#include <cmath>

#include "util/matrix.h"
#include "util/stats.h"

namespace cbix {
namespace {

TEST(MatrixTest, IdentityAndAccess) {
  Matrix m = Matrix::Identity(3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 0.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 58);
  EXPECT_EQ(c(0, 1), 64);
  EXPECT_EQ(c(1, 0), 139);
  EXPECT_EQ(c(1, 1), 154);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(2, 3);
  int v = 0;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = ++v;
  }
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 1), a(1, 2));
  const Matrix tt = t.Transposed();
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(tt(r, c), a(r, c));
  }
}

TEST(MatrixTest, ApplyMatchesManualProduct) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = -1; a(1, 1) = 3;
  const std::vector<double> y = a.Apply({4.0, 5.0});
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 11.0);
}

TEST(JacobiTest, DiagonalMatrixEigenvaluesSorted) {
  Matrix m(3, 3);
  m(0, 0) = 1.0;
  m(1, 1) = 5.0;
  m(2, 2) = 3.0;
  const EigenDecomposition e = JacobiEigenSymmetric(m);
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 5.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
  EXPECT_NEAR(e.values[2], 1.0, 1e-10);
}

TEST(JacobiTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2; m(0, 1) = 1;
  m(1, 0) = 1; m(1, 1) = 2;
  const EigenDecomposition e = JacobiEigenSymmetric(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(e.vectors(0, 0)), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(std::fabs(e.vectors(1, 0)), std::sqrt(0.5), 1e-8);
}

TEST(JacobiTest, ReconstructsMatrix) {
  // A = V diag(L) V^T must reproduce the input.
  Matrix m(4, 4);
  const double vals[4][4] = {{4, 1, 0.5, 0},
                             {1, 3, 0.2, 0.1},
                             {0.5, 0.2, 2, 0.3},
                             {0, 0.1, 0.3, 1}};
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) m(r, c) = vals[r][c];
  }
  const EigenDecomposition e = JacobiEigenSymmetric(m);
  Matrix reconstructed(4, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < 4; ++k) {
        acc += e.vectors(i, k) * e.values[k] * e.vectors(j, k);
      }
      reconstructed(i, j) = acc;
    }
  }
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(reconstructed(i, j), m(i, j), 1e-8);
    }
  }
}

TEST(JacobiTest, EigenvectorsOrthonormal) {
  Matrix m(3, 3);
  m(0, 0) = 2; m(0, 1) = 1; m(0, 2) = 0;
  m(1, 0) = 1; m(1, 1) = 2; m(1, 2) = 1;
  m(2, 0) = 0; m(2, 1) = 1; m(2, 2) = 2;
  const EigenDecomposition e = JacobiEigenSymmetric(m);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < 3; ++k) {
        dot += e.vectors(k, i) * e.vectors(k, j);
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(CovarianceTest, KnownTwoDimensional) {
  // Perfectly anti-correlated pairs.
  const std::vector<std::vector<double>> rows = {{1, -1}, {-1, 1}};
  const Matrix cov = Covariance(rows);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), -1.0, 1e-12);
}

TEST(CovarianceTest, ConstantDataHasZeroCovariance) {
  const std::vector<std::vector<double>> rows(5, {2.0, 3.0});
  const Matrix cov = Covariance(rows);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) EXPECT_NEAR(cov(i, j), 0.0, 1e-12);
  }
}

TEST(StatsAccumulatorTest, BasicMoments) {
  StatsAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(acc.StdDev(), 2.0);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(StatsAccumulatorTest, SingleValue) {
  StatsAccumulator acc;
  acc.Add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.Variance(), 0.0);
}

TEST(PercentileTest, KnownQuantiles) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 12.5), 1.5);  // interpolated
}

TEST(PercentileTest, EmptyAndClamped) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 200), 7.0);
}

TEST(MeanTest, Basics) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace cbix
