// ServingEngine: the fault-tolerant concurrent serving runtime.
//
// The contract under test, in order of importance:
//   1. Zero faults => bit-identical to a plain CbirEngine holding the
//      same rows, across shards x quantization.
//   2. Snapshot isolation: concurrent readers always see one complete
//      snapshot — never a torn mix — while a writer inserts and merges.
//   3. Faulted shards degrade queries (coverage says what answered)
//      instead of failing or crashing, for every backing.
//   4. Deadlines, retries and min_shards behave as documented.
//   5. A save killed mid-commit leaves the previous file loadable.

#include "core/serving.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/fault_injector.h"
#include "corpus/vector_workload.h"

namespace cbix {
namespace {

std::vector<Vec> ClusteredData(size_t n, size_t dim, uint64_t seed = 33) {
  VectorWorkloadSpec spec;
  spec.distribution = VectorDistribution::kClustered;
  spec.count = n;
  spec.dim = dim;
  spec.seed = seed;
  return GenerateVectors(spec);
}

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "cbix_serving_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

EngineConfig MakeConfig(size_t shards, QuantizationKind quant,
                        IndexKind kind = IndexKind::kLinearScan) {
  EngineConfig config;
  config.index_kind = kind;
  config.metric = MetricKind::kL2;
  config.shards = shards;
  config.quantization = quant;
  config.pq_m = 6;
  config.rerank_factor = 8;
  config.hnsw_m = 8;
  config.hnsw_ef_construction = 60;
  return config;
}

void ExpectSameMatches(const std::vector<CbirEngine::Match>& got,
                       const std::vector<CbirEngine::Match>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << context << " rank " << i;
    EXPECT_EQ(got[i].name, want[i].name) << context << " rank " << i;
    EXPECT_EQ(got[i].label, want[i].label) << context << " rank " << i;
  }
}

struct ServingCase {
  std::string name;
  size_t shards;
  QuantizationKind quantization;
  IndexKind index_kind = IndexKind::kLinearScan;
};

class ServingEquivalence : public ::testing::TestWithParam<ServingCase> {};

// A ServingEngine fed row by row (merging several times along the way)
// must answer exactly like one CbirEngine that was handed all the rows
// at once — ids, distances, names, labels.
TEST_P(ServingEquivalence, ZeroFaultMatchesPlainEngine) {
  const ServingCase& param = GetParam();
  const size_t kDim = 24;
  const size_t kN = 300;
  const auto data = ClusteredData(kN, kDim);
  const auto queries = ClusteredData(8, kDim, /*seed=*/91);
  const EngineConfig config =
      MakeConfig(param.shards, param.quantization, param.index_kind);

  CbirEngine plain((FeatureExtractor()), config);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(plain
                    .AddFeatureVector(data[i], "v" + std::to_string(i),
                                      static_cast<int32_t>(i % 7))
                    .ok());
  }
  ASSERT_TRUE(plain.BuildIndex().ok());
  auto want = plain.QueryKnnBatchByVectors(queries, 10);
  ASSERT_TRUE(want.ok());

  // The serving overload with default options must not perturb the
  // plain path either.
  std::vector<QueryCoverage> coverage;
  auto with_options = plain.QueryKnnBatchByVectors(queries, 10,
                                                   SearchOptions{}, 2,
                                                   nullptr, &coverage);
  ASSERT_TRUE(with_options.ok());
  ASSERT_EQ(coverage.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectSameMatches((*with_options)[qi], (*want)[qi],
                      param.name + " options-overload q" + std::to_string(qi));
    EXPECT_TRUE(coverage[qi].status.ok());
    EXPECT_FALSE(coverage[qi].degraded);
    EXPECT_EQ(coverage[qi].shards_answered, coverage[qi].shards_total);
  }

  ServingOptions options;
  options.engine = config;
  options.delta_merge_threshold = 64;  // forces several merges
  options.search_threads = 2;
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < kN; ++i) {
    auto id = serve.Insert(data[i], "v" + std::to_string(i),
                           static_cast<int32_t>(i % 7));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(id.value(), static_cast<uint32_t>(i));  // ids are stable
  }
  EXPECT_GE(serve.merges(), kN / 64);
  ASSERT_TRUE(serve.Flush().ok());
  EXPECT_EQ(serve.size(), kN);
  EXPECT_EQ(serve.snapshot_info().delta_count, 0u);

  auto reply = serve.Search(queries, 10);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->degraded);
  ASSERT_EQ(reply->results.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectSameMatches(reply->results[qi], (*want)[qi],
                      param.name + " flushed q" + std::to_string(qi));
    EXPECT_TRUE(reply->coverage[qi].status.ok());
    EXPECT_TRUE(reply->coverage[qi].delta_answered);
    EXPECT_FALSE(reply->coverage[qi].degraded);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByQuantization, ServingEquivalence,
    ::testing::Values(
        ServingCase{"flat_none", 1, QuantizationKind::kNone},
        ServingCase{"flat_int8", 1, QuantizationKind::kInt8},
        ServingCase{"flat_pq", 1, QuantizationKind::kPq},
        ServingCase{"sharded_none", 3, QuantizationKind::kNone},
        ServingCase{"sharded_int8", 3, QuantizationKind::kInt8},
        ServingCase{"sharded_pq", 3, QuantizationKind::kPq},
        // HNSW-backed serving: approximate answers, but construction
        // is seeded-deterministic, so the sealed engine still matches
        // the plain engine exactly.
        ServingCase{"hnsw_flat", 1, QuantizationKind::kNone,
                    IndexKind::kHnsw},
        ServingCase{"hnsw_sharded", 3, QuantizationKind::kNone,
                    IndexKind::kHnsw},
        ServingCase{"hnsw_sharded_int8", 3, QuantizationKind::kInt8,
                    IndexKind::kHnsw}),
    [](const ::testing::TestParamInfo<ServingCase>& info) {
      return info.param.name;
    });

// Coverage honesty: an HNSW-backed ServingEngine under the zero-fault
// scenario answers APPROXIMATELY, but approximation is not
// degradation — with every shard answering, QueryCoverage::degraded
// must stay false for every query, and shards_answered must equal
// shards_total. (degraded means "some shard never answered", never
// "the index kind is approximate".)
TEST(ServingCoverage, ApproximateIndexNeverReportsDegraded) {
  const size_t kDim = 24;
  const size_t kN = 400;
  const auto data = ClusteredData(kN, kDim);
  const auto queries = ClusteredData(12, kDim, /*seed=*/91);

  for (const size_t shards : {size_t{1}, size_t{3}}) {
    ServingOptions options;
    options.engine = MakeConfig(shards, QuantizationKind::kNone,
                                IndexKind::kHnsw);
    options.delta_merge_threshold = 128;
    options.search_threads = 2;
    auto serving = ServingEngine::Create(FeatureExtractor(), options);
    ASSERT_TRUE(serving.ok());
    ServingEngine& serve = **serving;
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(serve.Insert(data[i], "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(serve.Flush().ok());

    auto reply = serve.Search(queries, 10);
    ASSERT_TRUE(reply.ok());
    EXPECT_FALSE(reply->degraded);
    ASSERT_EQ(reply->coverage.size(), queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const QueryCoverage& cov = reply->coverage[qi];
      EXPECT_TRUE(cov.status.ok()) << "shards=" << shards << " q" << qi;
      EXPECT_FALSE(cov.degraded) << "shards=" << shards << " q" << qi;
      EXPECT_EQ(cov.shards_answered, cov.shards_total)
          << "shards=" << shards << " q" << qi;
      EXPECT_EQ(cov.shards_total, shards);
      // Approximate or not, the engine must actually answer.
      EXPECT_EQ(reply->results[qi].size(), 10u);
    }
  }
}

// Rows still sitting in the delta (no merge yet) must be searchable
// and exact: sealed + delta together answer like one engine.
TEST(ServingDelta, SealedPlusDeltaIsExact) {
  const size_t kDim = 16;
  const size_t kN = 150;
  const auto data = ClusteredData(kN, kDim);
  const auto queries = ClusteredData(6, kDim, /*seed=*/91);
  const EngineConfig config = MakeConfig(1, QuantizationKind::kNone);

  CbirEngine plain((FeatureExtractor()), config);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(plain
                    .AddFeatureVector(data[i], "v" + std::to_string(i),
                                      static_cast<int32_t>(i % 5))
                    .ok());
  }
  ASSERT_TRUE(plain.BuildIndex().ok());
  auto want = plain.QueryKnnBatchByVectors(queries, 7);
  ASSERT_TRUE(want.ok());

  ServingOptions options;
  options.engine = config;
  options.delta_merge_threshold = 100;  // merge at 100, 50 stay in delta
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(serve
                    .Insert(data[i], "v" + std::to_string(i),
                            static_cast<int32_t>(i % 5))
                    .ok());
  }
  const auto info = serve.snapshot_info();
  EXPECT_EQ(info.sealed_count, 100u);
  EXPECT_EQ(info.delta_count, 50u);

  auto reply = serve.Search(queries, 7);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->degraded);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectSameMatches(reply->results[qi], (*want)[qi],
                      "delta q" + std::to_string(qi));
  }
}

TEST(ServingDelta, DeltaOnlyEngineAnswers) {
  const size_t kDim = 8;
  const auto data = ClusteredData(20, kDim);
  ServingOptions options;
  options.engine = MakeConfig(1, QuantizationKind::kNone);
  options.delta_merge_threshold = 1000;  // nothing ever merges
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(serve.Insert(data[i], "d" + std::to_string(i)).ok());
  }
  EXPECT_EQ(serve.snapshot_info().sealed_count, 0u);
  EXPECT_EQ(serve.snapshot_info().delta_count, 20u);

  auto reply = serve.Search({data[7]}, 1);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->results.size(), 1u);
  ASSERT_EQ(reply->results[0].size(), 1u);
  EXPECT_EQ(reply->results[0][0].id, 7u);
  EXPECT_EQ(reply->results[0][0].name, "d7");
  EXPECT_EQ(reply->results[0][0].distance, 0.0);
}

// The torn-snapshot test. A writer inserts vectors (crossing several
// merge boundaries); readers query concurrently with exact
// self-queries for rows that existed before the readers started.
// Every reply must be internally consistent: the row is found at
// distance zero with the name and label it was inserted with, and the
// snapshot version never runs backwards. A reader observing a torn
// mix (new rows with old name arrays, a half-built index, a
// mid-mutation engine) fails these assertions or trips TSan.
TEST(ServingConcurrency, SnapshotSwapIsNeverTorn) {
  const size_t kDim = 12;
  const size_t kInitial = 40;
  const size_t kTotal = 160;
  const auto data = ClusteredData(kTotal, kDim);

  ServingOptions options;
  options.engine = MakeConfig(2, QuantizationKind::kNone);
  options.delta_merge_threshold = 16;  // many swaps while readers run
  options.search_threads = 1;
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < kInitial; ++i) {
    ASSERT_TRUE(serve
                    .Insert(data[i], "row" + std::to_string(i),
                            static_cast<int32_t>(i))
                    .ok());
  }

  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};
  auto fail = [&failures](const std::string& what) {
    failures.fetch_add(1);
    ADD_FAILURE() << what;
  };

  std::thread writer([&] {
    for (size_t i = kInitial; i < kTotal; ++i) {
      auto id = serve.Insert(data[i], "row" + std::to_string(i),
                             static_cast<int32_t>(i));
      if (!id.ok() || id.value() != i) {
        fail("insert failed at " + std::to_string(i));
        break;
      }
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_version = 0;
      size_t probe = static_cast<size_t>(r);
      size_t rounds = 0;
      while (!writer_done.load() || rounds < 20) {
        ++rounds;
        const size_t id = probe % kInitial;
        probe += 7;
        auto reply = serve.Search({data[id]}, 1);
        if (!reply.ok()) {
          fail("search failed: " + reply.status().ToString());
          return;
        }
        if (reply->snapshot_version < last_version) {
          fail("snapshot version ran backwards");
          return;
        }
        last_version = reply->snapshot_version;
        if (reply->results[0].size() != 1) {
          fail("self-query returned no result");
          return;
        }
        const auto& m = reply->results[0][0];
        if (m.id != id || m.distance != 0.0 ||
            m.name != "row" + std::to_string(id) ||
            m.label != static_cast<int32_t>(id)) {
          fail("torn snapshot: row " + std::to_string(id) + " came back as " +
               m.name);
          return;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(serve.size(), kTotal);

  // After the dust settles the runtime answers exactly for every row.
  ASSERT_TRUE(serve.Flush().ok());
  for (size_t i = 0; i < kTotal; i += 13) {
    auto reply = serve.Search({data[i]}, 1);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->results[0].size(), 1u);
    EXPECT_EQ(reply->results[0][0].id, i);
  }
}

struct FaultCase {
  std::string name;
  QuantizationKind quantization;
  double fail_probability;
  int64_t latency_ms;
};

class ServingFaultMatrix : public ::testing::TestWithParam<FaultCase> {};

// Faults on one shard of three must never crash or hang any backing;
// coverage must tell the truth about what answered, and with a
// certain failure the results must come exactly from the surviving
// shards (round-robin: global id % shards == shard).
TEST_P(ServingFaultMatrix, DegradesInsteadOfFailing) {
  const FaultCase& param = GetParam();
  const size_t kShards = 3;
  const size_t kFaultyShard = 1;
  const size_t kDim = 24;
  const size_t kN = 240;
  const auto data = ClusteredData(kN, kDim);
  const auto queries = ClusteredData(6, kDim, /*seed=*/91);

  auto injector = std::make_shared<FaultInjector>();
  ServingOptions options;
  options.engine = MakeConfig(kShards, param.quantization);
  options.delta_merge_threshold = 64;
  options.search_threads = 2;
  options.fault_injector = injector;
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(serve.Insert(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(serve.Flush().ok());

  FaultInjector::ShardFault fault;
  fault.fail_probability = param.fail_probability;
  fault.latency_ms = param.latency_ms;
  injector->SetShardFault(kFaultyShard, fault);
  injector->Seed(42);
  injector->Enable(true);

  for (int round = 0; round < 4; ++round) {
    auto reply = serve.Search(queries, 5);
    ASSERT_TRUE(reply.ok()) << param.name;  // never a call-level error
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const QueryCoverage& cov = reply->coverage[qi];
      EXPECT_EQ(cov.shards_total, kShards);
      size_t ok_count = 0;
      for (StatusCode code : cov.shard_status) {
        if (code == StatusCode::kOk) ++ok_count;
      }
      EXPECT_EQ(cov.shards_answered, ok_count);
      EXPECT_TRUE(cov.status.ok());  // min_shards = 0: always served
      EXPECT_EQ(cov.degraded, cov.shards_answered < kShards);
      if (param.fail_probability == 1.0) {
        // The faulty shard can never answer; everything returned must
        // come from the other shards, and the reply must say so.
        EXPECT_EQ(cov.shards_answered, kShards - 1);
        EXPECT_TRUE(cov.degraded);
        EXPECT_EQ(cov.shard_status[kFaultyShard], StatusCode::kUnavailable);
        for (const auto& m : reply->results[qi]) {
          EXPECT_NE(m.id % kShards, kFaultyShard)
              << param.name << " returned a row from the failed shard";
        }
      }
    }
  }
  EXPECT_GT(injector->shard_attempts(), 0u);
  if (param.fail_probability == 1.0) {
    EXPECT_GT(injector->injected_failures(), 0u);
  }

  // With the faults cleared the engine is whole again.
  injector->Clear();
  auto reply = serve.Search(queries, 5);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->degraded);
}

INSTANTIATE_TEST_SUITE_P(
    FaultGrid, ServingFaultMatrix,
    ::testing::Values(
        FaultCase{"none_p0_slow", QuantizationKind::kNone, 0.0, 5},
        FaultCase{"none_p10", QuantizationKind::kNone, 0.1, 0},
        FaultCase{"none_p100", QuantizationKind::kNone, 1.0, 0},
        FaultCase{"none_p100_slow", QuantizationKind::kNone, 1.0, 5},
        FaultCase{"int8_p10", QuantizationKind::kInt8, 0.1, 2},
        FaultCase{"int8_p100", QuantizationKind::kInt8, 1.0, 0},
        FaultCase{"pq_p10", QuantizationKind::kPq, 0.1, 2},
        FaultCase{"pq_p100", QuantizationKind::kPq, 1.0, 0}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return info.param.name;
    });

// With p = 1.0 on one shard, a certain failure and exactness of the
// degraded merge: results must equal the exact top-k computed over
// the rows living on the surviving shards.
TEST(ServingFaults, CertainFailureYieldsExactTopKOverSurvivors) {
  const size_t kShards = 3;
  const size_t kFaultyShard = 2;
  const size_t kDim = 16;
  const size_t kN = 180;
  const auto data = ClusteredData(kN, kDim);
  const auto queries = ClusteredData(5, kDim, /*seed=*/91);

  auto injector = std::make_shared<FaultInjector>();
  ServingOptions options;
  options.engine = MakeConfig(kShards, QuantizationKind::kNone);
  options.fault_injector = injector;
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(serve.Insert(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(serve.Flush().ok());

  // Reference: a plain engine holding only the survivors' rows
  // (round-robin placement: shard = global id % shards), queried
  // without any faults. Distances must agree bit-for-bit; ids map
  // back through the survivors' global ids.
  std::vector<size_t> survivor_ids;
  CbirEngine survivors((FeatureExtractor()),
                       MakeConfig(1, QuantizationKind::kNone));
  for (size_t i = 0; i < kN; ++i) {
    if (i % kShards == kFaultyShard) continue;
    survivor_ids.push_back(i);
    ASSERT_TRUE(survivors.AddFeatureVector(data[i], "v" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(survivors.BuildIndex().ok());
  auto want = survivors.QueryKnnBatchByVectors(queries, 4);
  ASSERT_TRUE(want.ok());

  FaultInjector::ShardFault fault;
  fault.fail_probability = 1.0;
  injector->SetShardFault(kFaultyShard, fault);
  injector->Enable(true);

  auto reply = serve.Search(queries, 4);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->degraded);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& got = reply->results[qi];
    const auto& ref = (*want)[qi];
    ASSERT_EQ(got.size(), ref.size()) << "q" << qi;
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].id, survivor_ids[ref[i].id]) << "q" << qi;
      EXPECT_EQ(got[i].distance, ref[i].distance) << "q" << qi;
      EXPECT_EQ(got[i].name, ref[i].name) << "q" << qi;
    }
  }
}

// Transient faults plus retries: with p = 0.5 and generous retries
// every work item eventually succeeds, so coverage is full and the
// attempt counter shows the retries actually happened.
TEST(ServingFaults, RetriesRecoverTransientShardFailures) {
  const size_t kShards = 2;
  const size_t kDim = 12;
  const auto data = ClusteredData(120, kDim);
  const auto queries = ClusteredData(4, kDim, /*seed=*/91);

  auto injector = std::make_shared<FaultInjector>();
  ServingOptions options;
  options.engine = MakeConfig(kShards, QuantizationKind::kNone);
  options.search_threads = 1;
  options.fault_injector = injector;
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(serve.Insert(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(serve.Flush().ok());

  auto no_faults = serve.Search(queries, 5);
  ASSERT_TRUE(no_faults.ok());

  FaultInjector::ShardFault fault;
  fault.fail_probability = 0.5;
  injector->SetShardFault(0, fault);
  injector->SetShardFault(1, fault);
  injector->Seed(7);
  injector->Enable(true);

  SearchOptions search;
  search.max_retries = 20;  // P(21 straight failures) ~ 5e-7, seeded
  auto reply = serve.Search(queries, 5, search);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->degraded);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(reply->coverage[qi].shards_answered, kShards);
    ExpectSameMatches(reply->results[qi], no_faults->results[qi],
                      "retry q" + std::to_string(qi));
  }
  EXPECT_GT(injector->injected_failures(), 0u);
  EXPECT_GT(injector->shard_attempts(),
            injector->injected_failures());  // some attempts succeeded
}

// min_shards is a floor: a query that cannot meet it is withheld
// (empty results, non-OK coverage status) rather than silently
// answering over too little corpus.
TEST(ServingFaults, MinShardsWithholdsUnderCoveredQueries) {
  const size_t kShards = 3;
  const size_t kDim = 12;
  const auto data = ClusteredData(90, kDim);
  const auto queries = ClusteredData(3, kDim, /*seed=*/91);

  auto injector = std::make_shared<FaultInjector>();
  ServingOptions options;
  options.engine = MakeConfig(kShards, QuantizationKind::kNone);
  options.fault_injector = injector;
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(serve.Insert(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(serve.Flush().ok());

  FaultInjector::ShardFault fault;
  fault.fail_probability = 1.0;
  injector->SetShardFault(0, fault);
  injector->Enable(true);

  SearchOptions strict;
  strict.min_shards = kShards;  // demands every shard
  auto reply = serve.Search(queries, 5, strict);
  ASSERT_TRUE(reply.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_TRUE(reply->results[qi].empty());
    EXPECT_FALSE(reply->coverage[qi].status.ok());
    EXPECT_EQ(reply->coverage[qi].status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(reply->coverage[qi].degraded);
  }

  SearchOptions lenient;
  lenient.min_shards = kShards - 1;  // two of three is acceptable
  reply = serve.Search(queries, 5, lenient);
  ASSERT_TRUE(reply.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_FALSE(reply->results[qi].empty());
    EXPECT_TRUE(reply->coverage[qi].status.ok());
    EXPECT_TRUE(reply->coverage[qi].degraded);
  }
}

// A deadline shorter than an injected shard latency expires every
// shard: the call still returns (promptly, no hang), coverage says
// the shards timed out, and nothing is fabricated.
TEST(ServingFaults, DeadlineExpiryDegradesInsteadOfHanging) {
  const size_t kShards = 2;
  const size_t kDim = 12;
  const auto data = ClusteredData(80, kDim);
  const auto queries = ClusteredData(3, kDim, /*seed=*/91);

  auto injector = std::make_shared<FaultInjector>();
  ServingOptions options;
  options.engine = MakeConfig(kShards, QuantizationKind::kNone);
  options.fault_injector = injector;
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(serve.Insert(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(serve.Flush().ok());

  FaultInjector::ShardFault slow;
  slow.latency_ms = 80;
  injector->SetShardFault(0, slow);
  injector->SetShardFault(1, slow);
  injector->Enable(true);

  SearchOptions budget;
  budget.timeout_ms = 15;
  auto reply = serve.Search(queries, 5, budget);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->degraded);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_TRUE(reply->results[qi].empty());
    for (StatusCode code : reply->coverage[qi].shard_status) {
      EXPECT_EQ(code, StatusCode::kDeadlineExceeded);
    }
    // Deadline expiry is never retried; nothing is served, but the
    // contract (min_shards = 0) is still met.
    EXPECT_TRUE(reply->coverage[qi].status.ok());
  }
}

// A sealed pass that eats the whole budget leaves none for the delta:
// the sealed answer stands and coverage flags the unsearched delta.
TEST(ServingFaults, ExhaustedBudgetSkipsDeltaScan) {
  const size_t kDim = 12;
  const auto data = ClusteredData(120, kDim);

  auto injector = std::make_shared<FaultInjector>();
  ServingOptions options;
  options.engine = MakeConfig(1, QuantizationKind::kNone);
  options.delta_merge_threshold = 100;  // 100 sealed, 20 in the delta
  options.fault_injector = injector;
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(serve.Insert(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_EQ(serve.snapshot_info().delta_count, 20u);

  FaultInjector::ShardFault slow;
  slow.latency_ms = 60;
  injector->SetShardFault(0, slow);
  injector->Enable(true);

  SearchOptions budget;
  budget.timeout_ms = 25;
  auto reply = serve.Search({data[0]}, 3, budget);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->degraded);
  EXPECT_FALSE(reply->coverage[0].delta_answered);
}

// ----------------------------------------------------------------------
// Option and config validation at the public entry points.

TEST(ServingValidation, BadSearchOptionsAreRejected) {
  const size_t kDim = 8;
  const auto data = ClusteredData(10, kDim);
  ServingOptions options;
  options.engine = MakeConfig(2, QuantizationKind::kNone);
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(serve.Insert(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(serve.Flush().ok());

  SearchOptions bad;
  bad.timeout_ms = -5;
  EXPECT_EQ(serve.Search({data[0]}, 3, bad).status().code(),
            StatusCode::kInvalidArgument);
  bad = SearchOptions{};
  bad.retry_backoff_ms = -1;
  EXPECT_EQ(serve.Search({data[0]}, 3, bad).status().code(),
            StatusCode::kInvalidArgument);
  bad = SearchOptions{};
  bad.min_shards = 3;  // engine has 2 shards
  EXPECT_EQ(serve.Search({data[0]}, 3, bad).status().code(),
            StatusCode::kInvalidArgument);

  // Same contract on the engine's own serving overload.
  CbirEngine plain((FeatureExtractor()), MakeConfig(2, QuantizationKind::kNone));
  ASSERT_TRUE(plain.AddFeatureVector(data[0], "a").ok());
  EXPECT_EQ(plain.QueryKnnBatchByVectors({data[0]}, 1, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServingValidation, BadEngineConfigsAreRejected) {
  EngineConfig config = MakeConfig(1, QuantizationKind::kNone);
  config.query_tile = 0;
  ServingOptions options;
  options.engine = config;
  EXPECT_FALSE(ServingEngine::Create(FeatureExtractor(), options).ok());

  config = MakeConfig(1, QuantizationKind::kNone);
  config.shards = 0;
  options.engine = config;
  EXPECT_FALSE(ServingEngine::Create(FeatureExtractor(), options).ok());

  config = MakeConfig(1, QuantizationKind::kPq);
  config.pq_m = 0;
  options.engine = config;
  EXPECT_FALSE(ServingEngine::Create(FeatureExtractor(), options).ok());

  // The plain engine reports the same violation at build time instead
  // of asserting or throwing.
  config = MakeConfig(1, QuantizationKind::kNone);
  config.query_tile = 0;
  CbirEngine engine((FeatureExtractor()), config);
  ASSERT_TRUE(engine.AddFeatureVector(Vec{1.0f, 2.0f}, "x").ok());
  EXPECT_FALSE(engine.BuildIndex().ok());
}

TEST(ServingValidation, DimensionMismatchesAreRejected) {
  ServingOptions options;
  options.engine = MakeConfig(1, QuantizationKind::kNone);
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  EXPECT_FALSE(serve.Insert(Vec{}, "empty").ok());
  ASSERT_TRUE(serve.Insert(Vec{1.0f, 2.0f, 3.0f}, "first").ok());
  EXPECT_FALSE(serve.Insert(Vec{1.0f}, "short").ok());
  EXPECT_EQ(serve.Search({Vec{1.0f}}, 1).status().code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------------------
// Crash-safe persistence: a save killed at either fail point must
// leave the previously saved file untouched and loadable.

class ServingCrashSafeSave : public ::testing::TestWithParam<const char*> {};

TEST_P(ServingCrashSafeSave, KilledSaveLeavesOldFileLoadable) {
  const std::string fail_point = GetParam();
  const size_t kDim = 16;
  const auto data = ClusteredData(60, kDim);
  const auto queries = ClusteredData(4, kDim, /*seed=*/91);
  const EngineConfig config = MakeConfig(2, QuantizationKind::kInt8);

  auto injector = std::make_shared<FaultInjector>();
  CbirEngine engine((FeatureExtractor()), config);
  engine.SetFaultInjector(injector);
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(engine.BuildIndex().ok());
  auto want = engine.QueryKnnBatchByVectors(queries, 5);
  ASSERT_TRUE(want.ok());

  const std::string path = TempPath("crash_" + fail_point.substr(12));
  ASSERT_TRUE(engine.Save(path).ok());

  // Grow the engine, then kill the re-save at the chosen point.
  for (size_t i = 40; i < 60; ++i) {
    ASSERT_TRUE(engine.AddFeatureVector(data[i], "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(engine.BuildIndex().ok());
  injector->ArmFailPoint(fail_point, 1);
  injector->Enable(true);
  EXPECT_FALSE(engine.Save(path).ok());
  injector->Enable(false);

  // The old file must still load, bit-identical to the first save.
  CbirEngine loaded((FeatureExtractor()), config);
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 40u);
  auto got = loaded.QueryKnnBatchByVectors(queries, 5);
  ASSERT_TRUE(got.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectSameMatches((*got)[qi], (*want)[qi],
                      fail_point + " q" + std::to_string(qi));
  }

  // And with the fail point disarmed the save goes through again.
  ASSERT_TRUE(engine.Save(path).ok());
  CbirEngine reloaded((FeatureExtractor()), config);
  ASSERT_TRUE(reloaded.Load(path).ok());
  EXPECT_EQ(reloaded.size(), 60u);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(FailPoints, ServingCrashSafeSave,
                         ::testing::Values("engine.save.payload",
                                           "engine.save.commit"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           const std::string name = info.param;
                           return name.substr(name.rfind('.') + 1);
                         });

// ServingEngine-level round trip: Save flushes the delta, Load
// replaces contents, answers match.
TEST(ServingPersistence, SaveLoadRoundTrip) {
  const size_t kDim = 16;
  const auto data = ClusteredData(70, kDim);
  const auto queries = ClusteredData(4, kDim, /*seed=*/91);
  ServingOptions options;
  options.engine = MakeConfig(2, QuantizationKind::kNone);
  options.delta_merge_threshold = 32;
  auto serving = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(serving.ok());
  ServingEngine& serve = **serving;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(serve
                    .Insert(data[i], "v" + std::to_string(i),
                            static_cast<int32_t>(i % 3))
                    .ok());
  }
  auto want = serve.Search(queries, 6);
  ASSERT_TRUE(want.ok());

  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(serve.Save(path).ok());

  auto restored = ServingEngine::Create(FeatureExtractor(), options);
  ASSERT_TRUE(restored.ok());
  ServingEngine& other = **restored;
  ASSERT_TRUE(other.Load(path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(other.size(), data.size());
  auto got = other.Search(queries, 6);
  ASSERT_TRUE(got.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectSameMatches(got->results[qi], want->results[qi],
                      "roundtrip q" + std::to_string(qi));
  }

  // Loaded runtimes keep serving inserts.
  ASSERT_TRUE(other.Insert(data[0], "again").ok());
  EXPECT_EQ(other.size(), data.size() + 1);
}

}  // namespace
}  // namespace cbix
